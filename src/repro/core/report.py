"""Structured conflict reports.

The offline analyzer's output, mirroring the content of CCProf's
``CCPROF_result/*result`` files: per-loop metrics (sample contribution, cf,
sets utilized, classification) plus the responsible data structures for
loops flagged as conflicting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.classifier import Implication


@dataclass
class DataQuality:
    """Health of the observation channel behind one report.

    Populated by the offline analyzer so a reader can judge how much to
    trust the verdicts: a report built from a truncated run with 30% of
    its samples dropped is still *useful* (the paper's sparse-sampling
    claim), but its marginal loops deserve skepticism.

    Attributes:
        samples_seen: Samples that reached the analyzer.
        events_seen: Qualifying PMU events the run counted.
        samples_dropped: Samples lost in the channel (fault injection or
            PMU backpressure) — difference between captured and analyzed.
        samples_quarantined: Records discarded as damaged during ingestion
            (trace salvage, malformed log lines).
        injected_faults: Fault-injection counts per fault name, when a
            :class:`~repro.robustness.faults.FaultPipeline` was active.
        truncated: The profiling run stopped early (watchdog budget).
        truncation_reason: Which budget fired.
        min_loop_samples: Smallest sample count among analyzed hot loops.
        low_confidence_loops: Hot loops whose sample count fell below the
            confidence floor; their verdicts are downgraded, not dropped.
        warnings: Human-readable degradation notes.
    """

    samples_seen: int = 0
    events_seen: int = 0
    samples_dropped: int = 0
    samples_quarantined: int = 0
    injected_faults: Dict[str, int] = field(default_factory=dict)
    truncated: bool = False
    truncation_reason: Optional[str] = None
    min_loop_samples: Optional[int] = None
    low_confidence_loops: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when anything about the channel was less than perfect."""
        return bool(
            self.samples_dropped
            or self.samples_quarantined
            or self.injected_faults
            or self.truncated
            or self.low_confidence_loops
            or self.warnings
        )

    def warn(self, message: str) -> None:
        """Record one degradation note (deduplicated, order-preserving)."""
        if message not in self.warnings:
            self.warnings.append(message)

    def render_lines(self) -> List[str]:
        """Text rendering for :meth:`ConflictReport.render`."""
        status = "DEGRADED" if self.degraded else "clean"
        lines = [f"  data quality: {status}"]
        lines.append(
            f"    samples seen: {self.samples_seen}"
            f"  dropped: {self.samples_dropped}"
            f"  quarantined: {self.samples_quarantined}"
        )
        if self.injected_faults:
            parts = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.injected_faults.items())
            )
            lines.append(f"    injected faults: {parts}")
        if self.truncated:
            lines.append(f"    run truncated: {self.truncation_reason}")
        if self.min_loop_samples is not None:
            lines.append(f"    min samples per hot loop: {self.min_loop_samples}")
        if self.low_confidence_loops:
            lines.append(
                "    low-confidence loops: "
                + ", ".join(self.low_confidence_loops)
            )
        for warning in self.warnings:
            lines.append(f"    warning: {warning}")
        return lines


@dataclass
class DataStructureReport:
    """One data structure implicated in a loop's conflicts.

    Attributes:
        label: Allocation label (e.g. ``input_itemsets``).
        sample_count: Conflicting samples attributed to it.
        share: Fraction of the loop's samples on this structure.
    """

    label: str
    sample_count: int
    share: float


@dataclass
class LoopReport:
    """Analysis verdict for one loop (program context).

    Attributes:
        loop_name: ``file:line`` of the loop header (or ``func@ip``).
        sample_count: Samples attributed to the loop.
        miss_contribution: Loop's share of all sampled L1 misses — the
            contribution column of Tables 2/4.
        contribution_factor: Equation 1's cf at the analyzer's threshold.
        sets_utilized: Distinct cache sets among the loop's samples.
        mean_rcd: Mean sampled RCD (None when too few samples).
        probability: Classifier P(conflict) (None when unclassified).
        has_conflict: Final binary verdict.
        implication: Table 1 guidance row.
        confidence: ``"high"`` normally; ``"low"`` when the loop's sample
            count fell below the analyzer's confidence floor (the verdict
            stands but is flagged).
        data_structures: Responsible data structures, largest first.
    """

    loop_name: str
    sample_count: int
    miss_contribution: float
    contribution_factor: float
    sets_utilized: int
    mean_rcd: Optional[float] = None
    probability: Optional[float] = None
    has_conflict: bool = False
    implication: Implication = Implication.NO_CONFLICT
    confidence: str = "high"
    data_structures: List[DataStructureReport] = field(default_factory=list)

    def describe(self) -> str:
        """One-line rendering for the text report."""
        verdict = "CONFLICT" if self.has_conflict else "ok"
        if self.confidence != "high":
            verdict += "?"
        rcd = f"{self.mean_rcd:.1f}" if self.mean_rcd is not None else "-"
        probability = f"{self.probability:.2f}" if self.probability is not None else "-"
        return (
            f"{self.loop_name:<28} {self.miss_contribution:>7.2%} "
            f"cf={self.contribution_factor:.3f} sets={self.sets_utilized:>3} "
            f"meanRCD={rcd:>6} P={probability:>5} {verdict}"
        )


@dataclass
class ConflictReport:
    """Whole-program conflict analysis."""

    workload_name: str
    mean_sampling_period: float
    total_samples: int
    total_events: int
    rcd_threshold: int
    loops: List[LoopReport] = field(default_factory=list)
    data_quality: Optional[DataQuality] = None
    #: The online phase's RawProfile when the report came from
    #: :meth:`CCProf.run` (typed loosely to avoid a pmu dependency);
    #: excluded from rendering and comparison.
    raw_profile: Optional[object] = field(
        default=None, repr=False, compare=False
    )
    #: The analytical screen decision when the report came from a
    #: ``screen_first`` run (a
    #: :class:`~repro.analysis.screening.ScreeningReport`, typed loosely
    #: to avoid an analysis dependency); excluded from rendering and
    #: comparison so screened runs stay bit-identical to unscreened ones.
    screen: Optional[object] = field(default=None, repr=False, compare=False)

    def conflicting_loops(self) -> List[LoopReport]:
        """Loops the classifier flagged."""
        return [loop for loop in self.loops if loop.has_conflict]

    @property
    def has_conflicts(self) -> bool:
        """Whether any loop was flagged."""
        return any(loop.has_conflict for loop in self.loops)

    def loop(self, loop_name: str) -> LoopReport:
        """Look up one loop's report."""
        for entry in self.loops:
            if entry.loop_name == loop_name:
                return entry
        raise KeyError(f"no report for loop {loop_name!r}")

    def render(self) -> str:
        """Multi-line text report, CCPROF_result style."""
        lines = [
            f"CCProf conflict report: {self.workload_name}",
            f"  mean sampling period: {self.mean_sampling_period:.0f}",
            f"  samples: {self.total_samples}  (of {self.total_events} L1 miss events)",
            f"  RCD threshold: {self.rcd_threshold}",
            "",
            f"  {'loop':<28} {'contrib':>8} {'cf':>8} {'sets':>4} "
            f"{'meanRCD':>8} {'P(conf)':>7} verdict",
        ]
        for loop in self.loops:
            lines.append("  " + loop.describe())
            for structure in loop.data_structures:
                lines.append(
                    f"      data: {structure.label:<24} "
                    f"{structure.sample_count:>6} samples ({structure.share:.1%})"
                )
        if not self.loops:
            lines.append("  (no hot loops above the reporting threshold)")
        if self.data_quality is not None:
            lines.append("")
            lines.extend(self.data_quality.render_lines())
        return "\n".join(lines)
