"""Exact (simulator-mode) RCD measurement.

Paper §3.3: the miss sequence "can be accurately acquired by observing the
memory behavior of the application on a cache simulator" — the ground-truth
channel CCProf's sampled mode is validated against.  This module packages
that mode as a first-class API: drive a trace through the simulated L1,
collect the *complete* per-context miss sequences, and expose the same
:class:`~repro.core.rcd.RcdAnalysis` objects the sampled pipeline produces,
so exact and approximate results are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.contribution import DEFAULT_RCD_THRESHOLD, contribution_factor
from repro.core.rcd import RcdAnalysis, RcdArrayAnalysis
from repro.errors import AnalysisError
from repro.program.symbols import Symbolizer
from repro.trace.batch import DEFAULT_BATCH_SIZE, TraceBatch, as_batches
from repro.trace.record import MemoryAccess

#: Context key for misses outside any known loop.
GLOBAL_CONTEXT = "<all>"


@dataclass
class ExactMeasurement:
    """Complete miss sequences of one simulated run, by program context.

    Attributes:
        geometry: The simulated L1 geometry.
        sequences: Context name -> per-miss cache-set index sequence, in
            time order.  The :data:`GLOBAL_CONTEXT` entry holds every miss.
        total_accesses: Trace length.
    """

    geometry: CacheGeometry
    sequences: Dict[str, List[int]] = field(default_factory=dict)
    total_accesses: int = 0

    @property
    def total_misses(self) -> int:
        """All L1 misses observed."""
        return len(self.sequences.get(GLOBAL_CONTEXT, []))

    @property
    def miss_ratio(self) -> float:
        """Misses per access."""
        if not self.total_accesses:
            return 0.0
        return self.total_misses / self.total_accesses

    def contexts(self) -> List[str]:
        """Context names with at least one miss (global context excluded)."""
        return sorted(name for name in self.sequences if name != GLOBAL_CONTEXT)

    def analysis(self, context: str = GLOBAL_CONTEXT) -> RcdAnalysis:
        """Exact RCD analysis of one context."""
        sequence = self.sequences.get(context)
        if sequence is None:
            raise AnalysisError(f"no misses recorded for context {context!r}")
        return RcdAnalysis.from_set_sequence(sequence, self.geometry.num_sets)

    def vector_analysis(self, context: str = GLOBAL_CONTEXT) -> RcdArrayAnalysis:
        """Columnar exact RCD analysis of one context (vectorized compute,
        same observations as :meth:`analysis`)."""
        sequence = self.sequences.get(context)
        if sequence is None:
            raise AnalysisError(f"no misses recorded for context {context!r}")
        return RcdArrayAnalysis.from_set_sequence(sequence, self.geometry.num_sets)

    def contribution(
        self, context: str = GLOBAL_CONTEXT, threshold: int = DEFAULT_RCD_THRESHOLD
    ) -> float:
        """Exact contribution factor (Equation 1) of one context."""
        return contribution_factor(self.analysis(context), threshold)

    def conflicting_contexts(
        self,
        threshold: int = DEFAULT_RCD_THRESHOLD,
        cf_boundary: float = 0.25,
        min_misses: int = 32,
    ) -> List[str]:
        """Contexts whose exact cf crosses the boundary."""
        flagged = []
        for context in self.contexts():
            sequence = self.sequences[context]
            if len(sequence) < min_misses:
                continue
            if self.contribution(context, threshold) >= cf_boundary:
                flagged.append(context)
        return flagged


class ExactRcdMeasurer:
    """Runs traces through the simulator and collects exact miss sequences.

    Args:
        geometry: L1 geometry.
        symbolizer: Optional symbolizer; with one, misses are additionally
            grouped per innermost loop (code-centric contexts).
        policy: Replacement policy of the simulated L1.
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        symbolizer: Optional[Symbolizer] = None,
        policy: str = "lru",
    ) -> None:
        self.geometry = geometry
        self.symbolizer = symbolizer
        self.policy = policy

    def run(self, stream: Iterable[MemoryAccess]) -> ExactMeasurement:
        """Simulate a trace; return the complete per-context measurement."""
        cache = SetAssociativeCache(self.geometry, policy=self.policy)
        measurement = ExactMeasurement(geometry=self.geometry)
        sequences = measurement.sequences
        sequences[GLOBAL_CONTEXT] = []
        symbolizer = self.symbolizer
        set_index_of = self.geometry.set_index
        accesses = 0
        for access in stream:
            accesses += 1
            if cache.access(access.address, access.ip).hit:
                continue
            set_index = set_index_of(access.address)
            sequences[GLOBAL_CONTEXT].append(set_index)
            if symbolizer is not None:
                loop_name = symbolizer.loop_of(access.ip)
                if loop_name is not None:
                    sequences.setdefault(loop_name, []).append(set_index)
        measurement.total_accesses = accesses
        return measurement

    def run_batched(
        self,
        trace: Union[TraceBatch, Iterable],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> ExactMeasurement:
        """Vectorized :meth:`run`: batched simulation, columnar miss
        extraction, identical per-context sequences.

        Accepts a batch, a batch iterable, or a scalar access stream.
        Only the misses take a Python loop (for per-loop attribution), and
        symbol lookups are memoized per unique IP.
        """
        cache = SetAssociativeCache(self.geometry, policy=self.policy)
        measurement = ExactMeasurement(geometry=self.geometry)
        sequences = measurement.sequences
        global_sequence: List[int] = []
        sequences[GLOBAL_CONTEXT] = global_sequence
        symbolizer = self.symbolizer
        loop_of: Dict[int, Optional[str]] = {}
        accesses = 0
        for batch in as_batches(trace, batch_size):
            accesses += len(batch)
            outcome = cache.access_batch(batch)
            miss_mask = outcome.miss
            if not miss_mask.any():
                continue
            miss_sets = outcome.set_index[miss_mask].astype(np.int64).tolist()
            global_sequence.extend(miss_sets)
            if symbolizer is None:
                continue
            for ip, set_index in zip(
                batch.ip[miss_mask].tolist(), miss_sets
            ):
                loop_name = loop_of.get(ip, loop_of)
                if loop_name is loop_of:  # sentinel: not looked up yet
                    loop_name = symbolizer.loop_of(ip)
                    loop_of[ip] = loop_name
                if loop_name is not None:
                    sequences.setdefault(loop_name, []).append(set_index)
        measurement.total_accesses = accesses
        return measurement

    def run_workload(self, workload) -> ExactMeasurement:
        """Convenience: measure a workload, symbolizing via its image."""
        if self.symbolizer is None and getattr(workload, "image", None) is not None:
            measurer = ExactRcdMeasurer(
                geometry=self.geometry,
                symbolizer=Symbolizer(workload.image),
                policy=self.policy,
            )
            return measurer.run(workload.trace())
        return self.run(workload.trace())
