"""Streaming windowed conflict analysis: incremental RCD over a sample stream.

:class:`~repro.core.phases.PhaseAnalyzer` answers "when does the conflict
exist?" but only after materializing the whole sample list — fine for a
short run, useless for continuous profiling of a long-running service
where the stream never ends.  This module is the incremental twin:
:class:`StreamingPhaseAnalyzer` consumes the stream chunk-by-chunk (the
v2 chunked trace format is already stream-friendly), maintains **bounded
per-window state** — a ring of at most one in-progress window's set
sequence plus per-set reuse trackers — and emits one mergeable
:class:`WindowSummary` per completed window.

Contract, pinned by the differential suite in
``tests/test_core_streaming.py``:

- **bit-consistency** — on the same sample stream and window settings,
  ``finish().to_phased()`` equals ``PhaseAnalyzer.analyze(samples)``
  report-for-report, including the trailing ``min_window`` fold and
  every contribution-factor float;
- **O(window) memory** — tracked state (raw set buffer + per-set reuse
  dictionaries) never exceeds a small multiple of ``window`` regardless
  of stream length; :attr:`StreamingPhaseAnalyzer.peak_tracked` records
  the high-water mark so tests (and the obs layer) can verify it.

The emitted timeline feeds three consumers: ``analysis.window.*``
counters/histograms on the metrics registry, the ``timeline`` section of
a :class:`~repro.obs.manifest.RunManifest` (strict-schema, versioned —
see :func:`StreamingAnalysis.timeline_record`), and JSONL window-span
export for machine consumption (``export_jsonl``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.core.contribution import DEFAULT_RCD_THRESHOLD
from repro.core.phases import PhasedAnalysis, PhaseReport
from repro.errors import AnalysisError
from repro.obs.manifest import TIMELINE_VERSION
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer

#: Default cap on windows recorded into a manifest timeline.  Longer
#: runs are coalesced pairwise (see :meth:`WindowSummary.merge`) so the
#: manifest stays small; the ``coalesced`` flag records that it happened.
DEFAULT_TIMELINE_WINDOWS = 512

#: Chunk size used when converting a scalar sample stream to address
#: columns for the windowed engine hooks.
DEFAULT_CHUNK_SIZE = 4096


@dataclass(frozen=True)
class WindowSummary:
    """One window's verdict plus the counts needed to merge it.

    The first six fields mirror :class:`~repro.core.phases.PhaseReport`
    exactly (see :meth:`to_phase_report`); the rest are the mergeable
    raw counts a rollup needs.

    Attributes:
        index: Ordinal of the window in emission order.
        first_sample: Global index of the window's first sample.
        sample_count: Samples in the window.
        contribution_factor: Equation 1 over the window's samples.
        has_conflict: Whether the window exceeds the cf boundary.
        victim_sets: Sets with short-RCD observations inside the window.
        rcd_observations: RCD observations in the window (misses with a
            same-set predecessor inside the window).
        short_rcds: Observations below the RCD threshold.
        sets_touched: Distinct sets the window's samples landed on.
        merged_from: How many original windows this summary covers (> 1
            after a :meth:`merge` rollup).
    """

    index: int
    first_sample: int
    sample_count: int
    contribution_factor: float
    has_conflict: bool
    victim_sets: List[int]
    rcd_observations: int = 0
    short_rcds: int = 0
    sets_touched: int = 0
    merged_from: int = 1

    def to_phase_report(self) -> PhaseReport:
        """The batch-analysis view of this window (bit-compatible)."""
        return PhaseReport(
            index=self.index,
            first_sample=self.first_sample,
            sample_count=self.sample_count,
            contribution_factor=self.contribution_factor,
            has_conflict=self.has_conflict,
            victim_sets=list(self.victim_sets),
        )

    def merge(self, other: "WindowSummary", cf_boundary: float) -> "WindowSummary":
        """Roll ``other`` (the adjacent later window) into this one.

        A rollup, not a re-analysis: RCD pairs crossing the boundary
        between the two windows are *not* re-linked, so the merged
        observation counts are a lower bound and the merged cf is
        recomputed from the summed counts.  ``has_conflict`` is sticky
        (either half conflicting marks the merged window) so coalescing
        a timeline never hides a conflict phase.
        """
        if other.first_sample < self.first_sample:
            raise AnalysisError("merge expects the later window on the right")
        samples = self.sample_count + other.sample_count
        short = self.short_rcds + other.short_rcds
        return WindowSummary(
            index=self.index,
            first_sample=self.first_sample,
            sample_count=samples,
            contribution_factor=short / samples if samples else 0.0,
            has_conflict=self.has_conflict or other.has_conflict,
            victim_sets=sorted(set(self.victim_sets) | set(other.victim_sets)),
            rcd_observations=self.rcd_observations + other.rcd_observations,
            short_rcds=short,
            sets_touched=max(self.sets_touched, other.sets_touched),
            merged_from=self.merged_from + other.merged_from,
        )

    def to_record(self) -> Dict[str, object]:
        """One JSON record (the timeline/JSONL layout)."""
        return {
            "index": self.index,
            "first_sample": self.first_sample,
            "samples": self.sample_count,
            "cf": self.contribution_factor,
            "conflict": self.has_conflict,
            "victim_sets": list(self.victim_sets),
            "rcd_observations": self.rcd_observations,
            "short_rcds": self.short_rcds,
            "sets_touched": self.sets_touched,
            "merged_from": self.merged_from,
        }


class _WindowTracker:
    """Incremental per-window RCD state: one dict entry per touched set.

    Positions are window-local sample ordinals, so an RCD observed here
    equals the one :func:`repro.core.rcd.compute_rcds` would produce over
    the window's set-index slice — which is how the streaming analyzer
    stays bit-identical to the batch phase analysis.
    """

    __slots__ = (
        "first_sample", "threshold", "count",
        "last_seen", "short_by_set", "obs_total", "short_total",
    )

    def __init__(self, first_sample: int, threshold: int) -> None:
        self.first_sample = first_sample
        self.threshold = threshold
        self.count = 0
        self.last_seen: Dict[int, int] = {}
        self.short_by_set: Dict[int, int] = {}
        self.obs_total = 0
        self.short_total = 0

    def observe(self, set_index: int) -> None:
        position = self.count
        previous = self.last_seen.get(set_index)
        if previous is not None:
            self.obs_total += 1
            if position - previous - 1 < self.threshold:
                self.short_total += 1
                self.short_by_set[set_index] = (
                    self.short_by_set.get(set_index, 0) + 1
                )
        self.last_seen[set_index] = position
        self.count += 1

    @property
    def tracked_entries(self) -> int:
        """Dictionary entries held (the tracker's state size)."""
        return len(self.last_seen) + len(self.short_by_set)

    def summary(self, index: int, cf_boundary: float) -> WindowSummary:
        cf = self.short_total / self.count if self.count else 0.0
        return WindowSummary(
            index=index,
            first_sample=self.first_sample,
            sample_count=self.count,
            contribution_factor=cf,
            has_conflict=cf >= cf_boundary,
            victim_sets=sorted(self.short_by_set),
            rcd_observations=self.obs_total,
            short_rcds=self.short_total,
            sets_touched=len(self.last_seen),
            merged_from=1,
        )


@dataclass
class StreamingAnalysis:
    """What one finished streaming run produced.

    ``summaries`` is the full per-window timeline; :meth:`to_phased`
    materializes the batch-compatible view for existing consumers.
    """

    window: int
    min_window: int
    rcd_threshold: int
    cf_boundary: float
    summaries: List[WindowSummary] = field(default_factory=list)
    total_samples: int = 0
    peak_tracked: int = 0
    folded: bool = False
    engine: str = ""
    #: Name of the engine whose windowed hook was *requested* when the
    #: run actually executed on a fallback engine (e.g. ``"sharded"``
    #: when the sharded backend routed windowed analysis to batched).
    fallback_from: Optional[str] = None

    def to_phased(self) -> PhasedAnalysis:
        """The batch-analysis view (bit-compatible with PhaseAnalyzer)."""
        return PhasedAnalysis(
            phases=[summary.to_phase_report() for summary in self.summaries]
        )

    @property
    def conflict_fraction(self) -> float:
        """Share of windows that conflict."""
        if not self.summaries:
            return 0.0
        conflicting = sum(1 for s in self.summaries if s.has_conflict)
        return conflicting / len(self.summaries)

    def transitions(self) -> List[int]:
        """Window indices where the verdict flips (phase boundaries)."""
        flips: List[int] = []
        for previous, current in zip(self.summaries, self.summaries[1:]):
            if previous.has_conflict != current.has_conflict:
                flips.append(current.index)
        return flips

    def conflict_windows(self) -> List[WindowSummary]:
        """Windows flagged as conflicting."""
        return [s for s in self.summaries if s.has_conflict]

    def victim_sets(self) -> List[int]:
        """Union of victim sets across all conflicting windows."""
        victims: set = set()
        for summary in self.conflict_windows():
            victims.update(summary.victim_sets)
        return sorted(victims)

    def timeline_record(
        self, max_windows: int = DEFAULT_TIMELINE_WINDOWS
    ) -> Dict[str, object]:
        """The manifest ``timeline`` section (strict-schema, versioned).

        Timelines longer than ``max_windows`` are coalesced by pairwise
        :meth:`WindowSummary.merge` so the manifest stays bounded; the
        ``coalesced`` flag records the loss of resolution.
        """
        if max_windows < 1:
            raise AnalysisError(f"max_windows must be positive: {max_windows}")
        windows = list(self.summaries)
        coalesced = False
        while len(windows) > max_windows:
            coalesced = True
            merged: List[WindowSummary] = []
            for i in range(0, len(windows) - 1, 2):
                merged.append(windows[i].merge(windows[i + 1], self.cf_boundary))
            if len(windows) % 2:
                merged.append(windows[-1])
            windows = merged
        record: Dict[str, object] = {
            "version": TIMELINE_VERSION,
            "window": self.window,
            "min_window": self.min_window,
            "rcd_threshold": self.rcd_threshold,
            "cf_boundary": self.cf_boundary,
            "engine": self.engine,
            "total_samples": self.total_samples,
            "conflict_fraction": self.conflict_fraction,
            "transitions": self.transitions(),
            "coalesced": coalesced,
            "windows": [summary.to_record() for summary in windows],
        }
        if self.fallback_from is not None:
            record["fallback_from"] = self.fallback_from
        return record

    def export_jsonl(self, path) -> int:
        """Write one JSON record per window; returns the count written."""
        import json

        count = 0
        with open(path, "w", encoding="ascii") as handle:
            for summary in self.summaries:
                handle.write(
                    json.dumps(summary.to_record(), sort_keys=True) + "\n"
                )
                count += 1
        return count


class StreamingPhaseAnalyzer:
    """Incremental windowed conflict analysis with O(window) state.

    Feed samples with :meth:`feed` (scalar :class:`AddressSample`
    stream), :meth:`feed_addresses` (an address column — the columnar
    engines' path), or :meth:`feed_sets` (pre-computed set indices);
    then :meth:`finish` closes the stream and returns the
    :class:`StreamingAnalysis`.

    Bit-consistency with the batch analyzer hinges on two details this
    class reproduces exactly:

    - per-window RCD is computed over window-local positions, so window
      boundaries reset reuse tracking just like the batch slice does;
    - a trailing window smaller than ``min_window`` folds into its
      predecessor, which *re-links* reuse pairs across the former
      boundary — the analyzer keeps the last full window's tracker
      alive (not just its summary) and replays the partial tail into it
      (the tail's raw set sequence is the only per-sample state held,
      bounded by ``window``).

    Args mirror :class:`~repro.core.phases.PhaseAnalyzer`; ``on_window``
    is called with each :class:`WindowSummary` as it becomes final (the
    service's per-window progress hook).
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        window: int = 256,
        rcd_threshold: int = DEFAULT_RCD_THRESHOLD,
        cf_boundary: float = 0.25,
        min_window: int = 32,
        on_window: Optional[Callable[[WindowSummary], None]] = None,
    ) -> None:
        if window <= 0:
            raise AnalysisError(f"window must be positive: {window}")
        if not 0 < min_window <= window:
            raise AnalysisError(
                f"min_window must be in (0, window]: {min_window} vs {window}"
            )
        if rcd_threshold <= 0:
            raise AnalysisError(
                f"RCD threshold must be positive: {rcd_threshold}"
            )
        self.geometry = geometry
        self.window = window
        self.rcd_threshold = rcd_threshold
        self.cf_boundary = cf_boundary
        self.min_window = min_window
        self.on_window = on_window
        self.samples_seen = 0
        self.peak_tracked = 0
        self._current = _WindowTracker(0, rcd_threshold)
        self._current_sets: List[int] = []
        self._pending: Optional[_WindowTracker] = None
        self._summaries: List[WindowSummary] = []
        self._folded = False
        self._analysis: Optional[StreamingAnalysis] = None

    # -- feeding --------------------------------------------------------

    def feed(self, samples: Iterable) -> None:
        """Consume a chunk of :class:`AddressSample` records (or anything
        with an ``address`` attribute)."""
        set_index = self.geometry.set_index
        for sample in samples:
            self._observe(set_index(sample.address))

    def feed_addresses(self, addresses: np.ndarray) -> None:
        """Consume a chunk of raw addresses (vectorized set extraction)."""
        column = np.asarray(addresses, dtype=np.uint64)
        if column.size:
            sets = self.geometry.set_indices(column).astype(np.int64)
            self.feed_sets(sets.tolist())

    def feed_sets(self, set_sequence: Sequence[int]) -> None:
        """Consume a chunk of pre-computed cache-set indices."""
        for set_index in set_sequence:
            self._observe(int(set_index))

    def _observe(self, set_index: int) -> None:
        if self._analysis is not None:
            raise AnalysisError("streaming analyzer already finished")
        self._current.observe(set_index)
        self._current_sets.append(set_index)
        self.samples_seen += 1
        tracked = len(self._current_sets) + self._current.tracked_entries
        if self._pending is not None:
            tracked += self._pending.tracked_entries
        if tracked > self.peak_tracked:
            self.peak_tracked = tracked
        if self._current.count == self.window:
            if self._pending is not None:
                self._emit(self._pending)
            self._pending = self._current
            self._current = _WindowTracker(self.samples_seen, self.rcd_threshold)
            self._current_sets = []

    # -- emission -------------------------------------------------------

    def _emit(self, tracker: _WindowTracker) -> None:
        summary = tracker.summary(len(self._summaries), self.cf_boundary)
        self._summaries.append(summary)
        registry = get_registry()
        if registry.enabled:
            registry.counter("analysis.window.emitted").inc()
            if summary.has_conflict:
                registry.counter("analysis.window.conflicts").inc()
            registry.histogram("analysis.window.samples").observe(
                summary.sample_count
            )
            registry.histogram("analysis.window.short_rcds").observe(
                summary.short_rcds
            )
        tracer = get_tracer()
        # Window spans nest under the enclosing stage span only: emitted
        # as roots they would flood the tracer's bounded root cap on a
        # long stream (one window per `window` samples, forever).
        if tracer.enabled and tracer.current is not None:
            with tracer.span(
                "analysis.window",
                index=summary.index,
                samples=summary.sample_count,
                cf=round(summary.contribution_factor, 4),
                conflict=summary.has_conflict,
            ):
                pass
        if self.on_window is not None:
            self.on_window(summary)

    def finish(self, engine: str = "") -> StreamingAnalysis:
        """Close the stream and return the analysis (idempotent)."""
        if self._analysis is not None:
            return self._analysis
        current, pending = self._current, self._pending
        if current.count == 0:
            if pending is not None:
                self._emit(pending)
        elif pending is not None and current.count < self.min_window:
            # Trailing fold: replay the partial tail into the kept full
            # window's tracker — positions continue past `window`, so
            # reuse pairs crossing the former boundary are linked exactly
            # as the batch analysis of the combined slice links them.
            for set_index in self._current_sets:
                pending.observe(set_index)
            self._folded = True
            registry = get_registry()
            if registry.enabled:
                registry.counter("analysis.window.folds").inc()
            self._emit(pending)
        else:
            if pending is not None:
                self._emit(pending)
            self._emit(current)
        self._current_sets = []
        self._pending = None
        registry = get_registry()
        if registry.enabled:
            registry.gauge("analysis.window.peak_tracked").set(
                self.peak_tracked
            )
        self._analysis = StreamingAnalysis(
            window=self.window,
            min_window=self.min_window,
            rcd_threshold=self.rcd_threshold,
            cf_boundary=self.cf_boundary,
            summaries=self._summaries,
            total_samples=self.samples_seen,
            peak_tracked=self.peak_tracked,
            folded=self._folded,
            engine=engine,
        )
        return self._analysis


def iter_address_chunks(
    samples: Iterable, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterable[np.ndarray]:
    """Chunk a sample stream into uint64 address columns.

    Accepts an address ``ndarray`` (sliced), or any iterable of records
    with an ``address`` attribute (buffered ``chunk_size`` at a time) —
    the adapter the columnar windowed engine hooks use, so a live
    sample stream never has to be materialized whole.
    """
    if chunk_size <= 0:
        raise AnalysisError(f"chunk_size must be positive: {chunk_size}")
    if isinstance(samples, np.ndarray):
        column = samples.astype(np.uint64, copy=False)
        for start in range(0, column.size, chunk_size):
            yield column[start:start + chunk_size]
        return
    buffer: List[int] = []
    for sample in samples:
        buffer.append(int(sample.address))
        if len(buffer) >= chunk_size:
            yield np.array(buffer, dtype=np.uint64)
            buffer = []
    if buffer:
        yield np.array(buffer, dtype=np.uint64)
