"""The conflict-miss classifier.

Paper §3.4 formulates conflict detection as binary classification: given a
loop's L1-miss contribution factor under the RCD threshold, does the loop
suffer from conflict misses?  The model is *simple logistic regression* —
one independent variable (cf), one binary outcome — trained on loops whose
ground-truth labels come from full cache simulation.

Also implemented here: the Table 1 implication matrix that turns the
(RCD level, contribution level) pair into optimization guidance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.stats.logistic import LogisticModel, fit_logistic
from repro.stats.validation import cross_validate_f1


class Implication(enum.Enum):
    """Table 1 of the paper: what an (RCD, contribution) pair implies."""

    INSIGNIFICANT = "insignificant impact on program context"
    STRONG_CONFLICT = "strong indication of imbalanced cache utilization"
    NO_CONFLICT = "no indication of unbalanced cache utilization"


def implication_for(
    rcd_is_low: bool, contribution_is_high: bool
) -> Implication:
    """Decide Table 1's row from the two boolean determinations.

    - low RCD + low contribution  -> insignificant impact;
    - low RCD + high contribution -> strong conflict indication;
    - high RCD (either contribution) -> no conflict indication.
    """
    if not rcd_is_low:
        return Implication.NO_CONFLICT
    return Implication.STRONG_CONFLICT if contribution_is_high else Implication.INSIGNIFICANT


@dataclass
class TrainingExample:
    """One labelled loop for classifier training.

    Attributes:
        contribution: The loop's contribution factor (cf).
        has_conflict: Ground-truth label from cache simulation.
        name: Optional identifier for reporting.
    """

    contribution: float
    has_conflict: bool
    name: str = ""


class ConflictClassifier:
    """Simple logistic regression over the contribution factor.

    Train with :meth:`fit`, query with :meth:`predict` /
    :meth:`predict_proba`, and validate with :meth:`cross_validated_f1`
    (8-fold by default, as in §5.2).
    """

    def __init__(self) -> None:
        self._model: Optional[LogisticModel] = None
        self._examples: List[TrainingExample] = []

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has produced a model."""
        return self._model is not None

    @property
    def model(self) -> LogisticModel:
        """The underlying fitted logistic model."""
        if self._model is None:
            raise ModelError("classifier not fitted; call fit() first")
        return self._model

    def fit(self, examples: Sequence[TrainingExample]) -> "ConflictClassifier":
        """Fit on labelled loops; returns self for chaining."""
        if len(examples) < 2:
            raise ModelError(f"need at least 2 training examples, got {len(examples)}")
        self._examples = list(examples)
        features = [example.contribution for example in examples]
        labels = [int(example.has_conflict) for example in examples]
        self._model = fit_logistic(features, labels)
        return self

    def predict_proba(self, contribution: float) -> float:
        """P(conflict) for one contribution factor."""
        return float(self.model.predict_proba([contribution])[0])

    def predict(self, contribution: float, threshold: float = 0.5) -> bool:
        """Binary conflict verdict for one contribution factor."""
        return self.predict_proba(contribution) >= threshold

    def predict_many(
        self, contributions: Sequence[float], threshold: float = 0.5
    ) -> List[bool]:
        """Vectorized verdicts."""
        probabilities = self.model.predict_proba(list(contributions))
        return [bool(p >= threshold) for p in np.asarray(probabilities)]

    def decision_boundary(self) -> float:
        """The cf value where the verdict flips."""
        return self.model.decision_boundary()

    def cross_validated_f1(self, folds: int = 8, seed: int = 0) -> float:
        """k-fold cross-validated F1 on the training examples (§5.2)."""
        if not self._examples:
            raise ModelError("no training examples recorded; call fit() first")
        features = [example.contribution for example in self._examples]
        labels = [int(example.has_conflict) for example in self._examples]
        return cross_validate_f1(features, labels, folds=folds, seed=seed)

    def training_summary(self) -> List[Tuple[str, float, bool, float]]:
        """(name, cf, label, P(conflict)) for every training example."""
        return [
            (
                example.name,
                example.contribution,
                example.has_conflict,
                self.predict_proba(example.contribution),
            )
            for example in self._examples
        ]
