"""Report diffing: quantify what an optimization changed.

The paper's §6 workflow ends by re-running CCProf on the transformed code
and comparing (Figure 9).  This module structures that comparison: given
the before and after :class:`~repro.core.report.ConflictReport` objects it
pairs up loops, computes per-loop deltas (contribution factor, verdicts,
set usage), and summarizes whether the optimization actually cured what
the first report flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.report import ConflictReport, LoopReport


@dataclass(frozen=True)
class LoopDelta:
    """Before/after comparison of one loop.

    Attributes:
        loop_name: The loop's report name.
        before: The loop's entry in the first report (None = appeared).
        after: The loop's entry in the second report (None = vanished).
    """

    loop_name: str
    before: Optional[LoopReport]
    after: Optional[LoopReport]

    @property
    def cf_delta(self) -> float:
        """Change in contribution factor (negative = improved)."""
        before_cf = self.before.contribution_factor if self.before else 0.0
        after_cf = self.after.contribution_factor if self.after else 0.0
        return after_cf - before_cf

    @property
    def cured(self) -> bool:
        """Was a flagged conflict cleared?"""
        was_flagged = self.before is not None and self.before.has_conflict
        still_flagged = self.after is not None and self.after.has_conflict
        return was_flagged and not still_flagged

    @property
    def regressed(self) -> bool:
        """Did a clean loop become conflicting?"""
        was_flagged = self.before is not None and self.before.has_conflict
        now_flagged = self.after is not None and self.after.has_conflict
        return now_flagged and not was_flagged

    def describe(self) -> str:
        """One-line rendering."""
        before_cf = f"{self.before.contribution_factor:.3f}" if self.before else "-"
        after_cf = f"{self.after.contribution_factor:.3f}" if self.after else "-"
        status = "CURED" if self.cured else ("REGRESSED" if self.regressed else "")
        return f"{self.loop_name:<28} cf {before_cf} -> {after_cf} {status}".rstrip()


@dataclass
class ReportDiff:
    """Structured comparison of two conflict reports."""

    before: ConflictReport
    after: ConflictReport
    deltas: List[LoopDelta] = field(default_factory=list)

    @classmethod
    def compare(cls, before: ConflictReport, after: ConflictReport) -> "ReportDiff":
        """Pair loops by name and compute deltas."""
        before_by_name = {loop.loop_name: loop for loop in before.loops}
        after_by_name = {loop.loop_name: loop for loop in after.loops}
        names = list(before_by_name)
        names.extend(n for n in after_by_name if n not in before_by_name)
        deltas = [
            LoopDelta(
                loop_name=name,
                before=before_by_name.get(name),
                after=after_by_name.get(name),
            )
            for name in names
        ]
        return cls(before=before, after=after, deltas=deltas)

    def cured_loops(self) -> List[LoopDelta]:
        """Loops whose conflicts the optimization cleared."""
        return [delta for delta in self.deltas if delta.cured]

    def regressed_loops(self) -> List[LoopDelta]:
        """Loops the optimization made conflicting."""
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def is_successful(self) -> bool:
        """At least one cure and no regressions."""
        return bool(self.cured_loops()) and not self.regressed_loops()

    def render(self) -> str:
        """Multi-line text summary."""
        lines = [
            f"optimization diff: {self.before.workload_name} -> "
            f"{self.after.workload_name}",
        ]
        for delta in self.deltas:
            lines.append("  " + delta.describe())
        cured = len(self.cured_loops())
        regressed = len(self.regressed_loops())
        lines.append(f"  => {cured} cured, {regressed} regressed")
        return "\n".join(lines)
