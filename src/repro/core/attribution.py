"""Code-centric and data-centric attribution (paper §3.4).

Code-centric attribution maps every sample to its source line and innermost
loop, so programmers see *where* conflicts happen (Table 4's per-loop
breakdown).  Data-centric attribution maps conflicting samples to the
allocation covering their effective address, so programmers see *which data
structure* to pad (the reference/input_itemsets finding in §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.pmu.sampler import AddressSample
from repro.program.symbols import Symbolizer
from repro.trace.allocator import VirtualAllocator

#: Label used for samples outside any known loop.
NO_LOOP = "<no-loop>"

#: Label used for addresses outside any recorded allocation (stack,
#: globals, or code the workload did not model).
UNATTRIBUTED = "<unattributed>"


@dataclass
class LoopSamples:
    """Samples attributed to one loop.

    Attributes:
        loop_name: Report name (``file:line`` or ``func@ip``).
        samples: The loop's samples, in time order.
        share: Fraction of all samples in the profile — the "L1 cache miss
            contribution" column of Tables 2 and 4.
    """

    loop_name: str
    samples: List[AddressSample] = field(default_factory=list)
    share: float = 0.0

    @property
    def count(self) -> int:
        """Number of samples in the loop."""
        return len(self.samples)


@dataclass
class CodeCentricAttribution:
    """All samples grouped by innermost loop, hot loops first."""

    loops: List[LoopSamples] = field(default_factory=list)
    total_samples: int = 0

    def loop(self, loop_name: str) -> LoopSamples:
        """Look up one loop's group."""
        for entry in self.loops:
            if entry.loop_name == loop_name:
                return entry
        raise KeyError(f"no samples attributed to loop {loop_name!r}")

    def hot_loops(self, min_share: float = 0.01) -> List[LoopSamples]:
        """Loops above a sample-share threshold — the ones worth analyzing,
        "avoid[ing] unnecessary optimization efforts on trivial code
        regions" (§3.4)."""
        return [entry for entry in self.loops if entry.share >= min_share]


def attribute_code(
    samples: Sequence[AddressSample], symbolizer: Optional[Symbolizer]
) -> CodeCentricAttribution:
    """Group samples by innermost loop via the symbolizer.

    Without a symbolizer (anonymous binary), every sample lands in the
    :data:`NO_LOOP` bucket — CCProf's "anonymous code blocks" behaviour for
    closed-source MKL (§6.3) is modelled by images whose blocks simply lack
    source locations, which still yields per-loop buckets named
    ``func@ip``.
    """
    groups: Dict[str, LoopSamples] = {}
    order: List[str] = []
    for sample in samples:
        loop_name = symbolizer.loop_of(sample.ip) if symbolizer else None
        key = loop_name or NO_LOOP
        group = groups.get(key)
        if group is None:
            group = LoopSamples(loop_name=key)
            groups[key] = group
            order.append(key)
        group.samples.append(sample)

    total = len(samples)
    for group in groups.values():
        group.share = group.count / total if total else 0.0
    ranked = sorted(groups.values(), key=lambda g: g.count, reverse=True)
    return CodeCentricAttribution(loops=ranked, total_samples=total)


@dataclass
class DataObjectSamples:
    """Samples attributed to one allocation (data structure)."""

    label: str
    count: int = 0
    share: float = 0.0


@dataclass
class DataCentricAttribution:
    """Sample counts per data structure, largest first."""

    objects: List[DataObjectSamples] = field(default_factory=list)
    total_samples: int = 0

    def object(self, label: str) -> DataObjectSamples:
        """Look up one data structure's tally."""
        for entry in self.objects:
            if entry.label == label:
                return entry
        raise KeyError(f"no samples attributed to data structure {label!r}")

    def top(self, count: int = 5) -> List[DataObjectSamples]:
        """The ``count`` most-sampled data structures."""
        return self.objects[:count]


def attribute_data(
    samples: Sequence[AddressSample], allocator: Optional[VirtualAllocator]
) -> DataCentricAttribution:
    """Map each sample's effective address to its covering allocation."""
    counts: Dict[str, int] = {}
    for sample in samples:
        allocation = allocator.find(sample.address) if allocator else None
        label = allocation.label if allocation else UNATTRIBUTED
        counts[label] = counts.get(label, 0) + 1
    total = len(samples)
    ranked = [
        DataObjectSamples(label=label, count=count, share=count / total if total else 0.0)
        for label, count in sorted(counts.items(), key=lambda kv: kv[1], reverse=True)
    ]
    return DataCentricAttribution(objects=ranked, total_samples=total)
