"""Phase-aware conflict analysis.

The paper's §7.1 critique of DProf — assuming a uniform workload — cuts
both ways: even CCProf's *whole-run* contribution factor dilutes a conflict
that only exists during one program phase.  This module analyzes the sample
stream in windows, producing per-phase verdicts and the transition points
where the conflict behaviour changes; Figure 4's "locality signatures"
generalized from cache sets to program phases.

Windows are measured in samples (not time), so a fixed window corresponds
to a roughly fixed number of misses regardless of phase speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.cache.geometry import CacheGeometry
from repro.core.contribution import DEFAULT_RCD_THRESHOLD, contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.errors import AnalysisError
from repro.pmu.sampler import AddressSample


@dataclass(frozen=True)
class PhaseReport:
    """Verdict for one window of samples.

    Attributes:
        index: Ordinal of the window.
        first_sample: Index (into the analyzed sample list) of the window's
            first sample.
        sample_count: Samples in the window.
        contribution_factor: Equation 1 over the window's samples.
        has_conflict: Whether the window exceeds the cf boundary.
        victim_sets: Sets with short-RCD observations inside the window.
    """

    index: int
    first_sample: int
    sample_count: int
    contribution_factor: float
    has_conflict: bool
    victim_sets: List[int]


@dataclass
class PhasedAnalysis:
    """All phase verdicts for one sample stream."""

    phases: List[PhaseReport] = field(default_factory=list)

    def conflict_phases(self) -> List[PhaseReport]:
        """Windows flagged as conflicting."""
        return [phase for phase in self.phases if phase.has_conflict]

    @property
    def conflict_fraction(self) -> float:
        """Share of windows that conflict — "how uniform is the problem"."""
        if not self.phases:
            return 0.0
        return len(self.conflict_phases()) / len(self.phases)

    def transitions(self) -> List[int]:
        """Window indices where the verdict flips (phase boundaries)."""
        flips: List[int] = []
        for previous, current in zip(self.phases, self.phases[1:]):
            if previous.has_conflict != current.has_conflict:
                flips.append(current.index)
        return flips

    @property
    def is_uniform(self) -> bool:
        """True when every window agrees — DProf's assumption holds."""
        return len(self.transitions()) == 0

    def max_contribution(self) -> float:
        """Largest per-window cf — the peak conflict intensity."""
        if not self.phases:
            raise AnalysisError("no phases analyzed")
        return max(phase.contribution_factor for phase in self.phases)


class PhaseAnalyzer:
    """Windowed conflict analysis over a sample stream.

    Args:
        geometry: L1 geometry for set attribution.
        window: Samples per window.
        rcd_threshold: Short-RCD threshold (Equation 1's T).
        cf_boundary: Per-window conflict decision boundary.
        min_window: Trailing windows smaller than this are folded into the
            previous window rather than judged alone.
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        window: int = 256,
        rcd_threshold: int = DEFAULT_RCD_THRESHOLD,
        cf_boundary: float = 0.25,
        min_window: int = 32,
    ) -> None:
        if window <= 0:
            raise AnalysisError(f"window must be positive: {window}")
        if not 0 < min_window <= window:
            raise AnalysisError(
                f"min_window must be in (0, window]: {min_window} vs {window}"
            )
        self.geometry = geometry
        self.window = window
        self.rcd_threshold = rcd_threshold
        self.cf_boundary = cf_boundary
        self.min_window = min_window

    def analyze(self, samples: Sequence[AddressSample]) -> PhasedAnalysis:
        """Split ``samples`` into windows and judge each."""
        analysis = PhasedAnalysis()
        if not samples:
            return analysis
        bounds = self._window_bounds(len(samples))
        for index, (start, end) in enumerate(bounds):
            window_samples = samples[start:end]
            rcd = RcdAnalysis.from_addresses(
                (sample.address for sample in window_samples), self.geometry
            )
            cf = contribution_factor(rcd, self.rcd_threshold)
            analysis.phases.append(
                PhaseReport(
                    index=index,
                    first_sample=start,
                    sample_count=len(window_samples),
                    contribution_factor=cf,
                    has_conflict=cf >= self.cf_boundary,
                    victim_sets=rcd.victim_sets(self.rcd_threshold),
                )
            )
        return analysis

    def _window_bounds(self, total: int) -> List[tuple]:
        bounds: List[tuple] = []
        start = 0
        while start < total:
            end = min(start + self.window, total)
            bounds.append((start, end))
            start = end
        # Fold an undersized trailing window into its predecessor.
        if len(bounds) >= 2 and bounds[-1][1] - bounds[-1][0] < self.min_window:
            last_start, last_end = bounds.pop()
            previous_start, _ = bounds.pop()
            bounds.append((previous_start, last_end))
        return bounds
