"""The CCProf pipeline: online profiling + offline analysis (paper §4).

:class:`CCProf` is the user-facing facade.  Online profiling samples the
workload's L1 miss stream through the PMU simulator; offline analysis
recovers loops from the program image, computes per-loop RCD distributions
and contribution factors, classifies each hot loop, and attributes
conflicting samples to data structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Union

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.core.attribution import (
    CodeCentricAttribution,
    attribute_code,
    attribute_data,
)
from repro.core.classifier import ConflictClassifier, implication_for
from repro.core.contribution import DEFAULT_RCD_THRESHOLD, contribution_factor
from repro.core.report import (
    ConflictReport,
    DataQuality,
    DataStructureReport,
    LoopReport,
)
from repro.engine import EngineBackend, get_backend, resolve_backend
from repro.errors import AnalysisError
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer
from repro.pmu.monitor import MonitorSession, RawProfile
from repro.pmu.periods import PeriodDistribution, UniformJitterPeriod
from repro.pmu.sampler import AddressSample
from repro.program.symbols import Symbolizer
from repro.robustness.budget import SamplingBudget
from repro.robustness.faults import FaultPipeline
from repro.robustness.retry import RetryPolicy
from repro.trace.record import MemoryAccess


class Workload(Protocol):
    """What the profiler needs from a workload (see workloads.base)."""

    name: str

    def trace(self):  # pragma: no cover - protocol signature only
        """Yield the workload's :class:`MemoryAccess` stream."""

    @property
    def image(self):  # pragma: no cover - protocol signature only
        """The workload's program image (or None)."""

    @property
    def allocator(self):  # pragma: no cover - protocol signature only
        """The workload's virtual allocator (or None)."""


#: Default fallback decision boundary on cf when no trained classifier is
#: supplied: conflict-free Rodinia loops sit at 0.10-0.20, conflicting ones
#: at 0.37+ (paper §5.1/§6), so 0.25 splits the published populations.
DEFAULT_CF_BOUNDARY = 0.25

#: Loops below this share of total samples are reported but not classified
#: ("trivial code regions", §3.4).
DEFAULT_HOT_LOOP_SHARE = 0.01

#: Minimum samples for a meaningful RCD distribution in a loop.
MIN_SAMPLES_FOR_RCD = 8

#: Hot loops below this many samples keep their verdict but have its
#: confidence downgraded to "low" in the report.
DEFAULT_CONFIDENCE_FLOOR = 32


@dataclass
class AnalysisSettings:
    """Offline-analysis knobs."""

    rcd_threshold: int = DEFAULT_RCD_THRESHOLD
    cf_boundary: float = DEFAULT_CF_BOUNDARY
    hot_loop_share: float = DEFAULT_HOT_LOOP_SHARE
    min_samples: int = MIN_SAMPLES_FOR_RCD
    confidence_floor: int = DEFAULT_CONFIDENCE_FLOOR


class OfflineAnalyzer:
    """Post-processes a :class:`RawProfile` into a :class:`ConflictReport`.

    The per-loop RCD computation goes through ``backend`` — an engine
    from the :mod:`repro.engine` registry — so the offline phase scales
    with the same backend selection as the online phase (all backends
    produce identical analyses; see the differential suite).
    """

    def __init__(
        self,
        settings: Optional[AnalysisSettings] = None,
        classifier: Optional[ConflictClassifier] = None,
        backend: Union[str, EngineBackend, None] = None,
    ) -> None:
        self.settings = settings or AnalysisSettings()
        self.classifier = classifier
        self.backend = (
            resolve_backend(backend) if backend is not None
            else get_backend("batched")
        )

    def screen(self, workload: Workload, geometry: CacheGeometry):
        """Run the analytical screen over a workload's declarations.

        The cheapest rung of the analysis ladder (screen → predict →
        simulate): birthday-collision probabilities plus stride-folding
        estimates, zero trace accesses.  Returns a
        :class:`~repro.analysis.screening.ScreeningReport`, or ``None``
        when the workload declares no access patterns (the screen then
        has nothing to say and the caller falls through to simulation).
        """
        from repro.analysis.screening import screen_workload

        try:
            return screen_workload(workload, geometry=geometry)
        except AnalysisError:
            return None

    def screened_report(self, workload_name: str, screen) -> ConflictReport:
        """Synthesize the report for a run the screen cleared.

        No sampling happened, so the report is empty of loops and says
        so loudly in its data-quality section; the screen decision rides
        along as ``report.screen``.
        """
        quality = DataQuality()
        quality.warn(
            "simulation skipped: analytical screen verdict 'clear' "
            f"(score {screen.score:.2f}, {len(screen.loops)} loops screened)"
        )
        report = ConflictReport(
            workload_name=workload_name,
            mean_sampling_period=0.0,
            total_samples=0,
            total_events=0,
            rcd_threshold=self.settings.rcd_threshold,
            data_quality=quality,
            screen=screen,
        )
        return report

    def analyze(self, profile: RawProfile, workload_name: str = "") -> ConflictReport:
        """Run the full offline pass over one raw profile.

        The returned report always carries a populated
        :class:`~repro.core.report.DataQuality` section describing how
        lossy the observation channel was (injection, truncation, loops too
        thin to classify).
        """
        sampling = profile.sampling
        tracer = get_tracer()
        with tracer.span("analyze", workload=workload_name):
            with tracer.span("attribute_code"):
                symbolizer = (
                    Symbolizer(profile.image) if profile.image is not None else None
                )
                code = attribute_code(sampling.samples, symbolizer)
            report = ConflictReport(
                workload_name=workload_name,
                mean_sampling_period=sampling.mean_period,
                total_samples=sampling.sample_count,
                total_events=sampling.total_events,
                rcd_threshold=self.settings.rcd_threshold,
                data_quality=self._data_quality(profile),
            )
            with tracer.span("classify_loops", contexts=len(code.loops)):
                for group in code.loops:
                    report.loops.append(
                        self._analyze_loop(group, profile, sampling.geometry)
                    )
            self._assess_loops(report)
            registry = get_registry()
            if registry.enabled:
                registry.counter("core.analyses").inc()
                registry.counter("core.contexts_analyzed").inc(len(code.loops))
                registry.counter("core.conflicts_flagged").inc(
                    len(report.conflicting_loops())
                )
        return report

    def _data_quality(self, profile: RawProfile) -> DataQuality:
        """Channel health from the run itself (pre-loop-analysis)."""
        sampling = profile.sampling
        quality = DataQuality(
            samples_seen=sampling.sample_count,
            events_seen=sampling.total_events,
            truncated=sampling.truncated,
            truncation_reason=sampling.truncation_reason,
        )
        fault_report = profile.fault_report
        if fault_report is not None:
            quality.injected_faults = dict(fault_report.injected)
            lost = fault_report.records_in - fault_report.records_out
            quality.samples_dropped = max(0, lost)
        if sampling.truncated:
            quality.warn(f"profiling run truncated: {sampling.truncation_reason}")
        if sampling.sample_count == 0:
            quality.warn("no samples captured; report is empty")
        elif sampling.sample_count < self.settings.min_samples:
            quality.warn(
                f"only {sampling.sample_count} samples captured; "
                "verdicts are unreliable"
            )
        return quality

    def _assess_loops(self, report: ConflictReport) -> None:
        """Fold per-loop sample-count diagnostics into the quality section."""
        quality = report.data_quality
        settings = self.settings
        hot = [
            loop
            for loop in report.loops
            if loop.miss_contribution >= settings.hot_loop_share
        ]
        if hot:
            quality.min_loop_samples = min(loop.sample_count for loop in hot)
        for loop in hot:
            if loop.sample_count < settings.min_samples:
                quality.warn(
                    f"loop {loop.loop_name}: {loop.sample_count} samples "
                    f"(< {settings.min_samples}); left unclassified"
                )
            if loop.confidence != "high":
                quality.low_confidence_loops.append(loop.loop_name)

    def _analyze_loop(self, group, profile: RawProfile, geometry: CacheGeometry) -> LoopReport:
        settings = self.settings
        addresses = np.fromiter(
            (sample.address for sample in group.samples), dtype=np.uint64
        )
        with get_tracer().span("rcd", loop=group.loop_name, samples=group.count):
            analysis = self.backend.rcd_from_addresses(addresses, geometry)
            cf = contribution_factor(analysis, settings.rcd_threshold)
        get_registry().counter("core.rcd_observations").inc(
            analysis.observation_count
        )
        loop_report = LoopReport(
            loop_name=group.loop_name,
            sample_count=group.count,
            miss_contribution=group.share,
            contribution_factor=cf,
            sets_utilized=int(np.unique(geometry.set_indices(addresses)).size),
        )
        enough_samples = group.count >= settings.min_samples
        if enough_samples and analysis.observation_count:
            loop_report.mean_rcd = analysis.mean_rcd()

        is_hot = group.share >= settings.hot_loop_share
        if is_hot and group.count < settings.confidence_floor:
            loop_report.confidence = "low"
        if is_hot and enough_samples:
            loop_report.probability, loop_report.has_conflict = self._classify(cf)
            rcd_is_low = (
                loop_report.mean_rcd is not None
                and loop_report.mean_rcd < geometry.num_sets / 2
            )
            loop_report.implication = implication_for(
                rcd_is_low=rcd_is_low or loop_report.has_conflict,
                contribution_is_high=loop_report.has_conflict,
            )
            if loop_report.has_conflict:
                loop_report.data_structures = self._data_structures(
                    group.samples, profile
                )
        return loop_report

    def _classify(self, cf: float):
        if self.classifier is not None and self.classifier.is_fitted:
            probability = self.classifier.predict_proba(cf)
            return probability, probability >= 0.5
        # Fallback: fixed boundary from the paper's published populations.
        return None, cf >= self.settings.cf_boundary

    def _data_structures(
        self, samples: Sequence[AddressSample], profile: RawProfile
    ) -> List[DataStructureReport]:
        data = attribute_data(samples, profile.allocator)
        return [
            DataStructureReport(
                label=entry.label, sample_count=entry.count, share=entry.share
            )
            for entry in data.objects
        ]


class CCProf:
    """End-to-end facade: ``report = CCProf().run(workload)``.

    Args:
        geometry: L1 geometry to profile against (paper default).
        period: Sampling-period distribution; default mean 1212 — the
            paper's recommended operating point.
        seed: Sampler RNG seed.
        settings: Offline-analysis settings.
        classifier: Optional trained conflict classifier; without one, the
            published cf boundary is used.
        strict: When True (default), a run that produces no qualifying
            events raises :class:`AnalysisError`.  When False, degraded
            runs return a best-effort (possibly empty) report whose
            ``data_quality`` section carries the warnings instead.
        inject: Optional fault pipeline applied to the sampled record
            stream — the PEBS-pathology model; injection counts land in
            the report's ``data_quality.injected_faults``.
        budget: Watchdog limits for the online phase; exhaustion yields a
            truncated partial profile rather than a hang.
        attach_failure_rate: Simulated PMU attach flakiness, retried with
            jittered exponential backoff (see
            :class:`~repro.pmu.monitor.MonitorSession`).
        retry_policy: Backoff schedule for flaky attach.
        engine: Engine backend for both phases — a registered name
            (``"batched"``, the default; ``"scalar"``; ``"sharded"``) or
            an :class:`~repro.engine.EngineBackend` instance, e.g.
            ``get_backend("sharded").configure(workers=4)``.  All
            registered backends produce bit-identical reports (the CLI
            exposes this as ``--engine``).
        screen_first: When True, :meth:`run` first runs the analytical
            screen (birthday/folding passes, zero trace accesses) and
            skips profiling + simulation entirely when the verdict is
            ``clear`` — the "predict-cheap, simulate-only-suspects"
            fleet path.  Suspect/unknown verdicts fall through to the
            normal pipeline and produce bit-identical reports; every
            decision increments an ``analysis.screen.*`` counter and
            rides on ``report.screen``.
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        period: Optional[PeriodDistribution] = None,
        seed: int = 0,
        settings: Optional[AnalysisSettings] = None,
        classifier: Optional[ConflictClassifier] = None,
        strict: bool = True,
        inject: Optional[FaultPipeline] = None,
        budget: Optional[SamplingBudget] = None,
        attach_failure_rate: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
        engine: Union[str, EngineBackend] = "batched",
        screen_first: bool = False,
    ) -> None:
        self.geometry = geometry
        self.period = period or UniformJitterPeriod(1212)
        self.seed = seed
        self.strict = strict
        self.inject = inject
        self.budget = budget
        self.attach_failure_rate = attach_failure_rate
        self.retry_policy = retry_policy
        self.backend = resolve_backend(engine)
        self.engine = self.backend.name
        self.screen_first = screen_first
        self.analyzer = OfflineAnalyzer(
            settings=settings, classifier=classifier, backend=self.backend
        )

    def screen(self, workload: Workload):
        """Screen the workload against this profiler's geometry.

        Returns ``None`` when the workload has no declared access
        patterns (nothing for the screen to reason about).
        """
        return self.analyzer.screen(workload, self.geometry)

    def profile(self, workload: Workload) -> RawProfile:
        """Online phase: sample the workload's trace.

        When a fault pipeline is configured, the sampled record stream is
        passed through it afterwards — modelling loss *in the observation
        channel*, downstream of the PMU — and the resulting
        :class:`~repro.robustness.faults.FaultReport` rides along on the
        profile for the offline phase's data-quality accounting.
        """
        session = MonitorSession(
            geometry=self.geometry,
            period=self.period,
            seed=self.seed,
            attach_failure_rate=self.attach_failure_rate,
            retry_policy=self.retry_policy,
            budget=self.budget,
            engine=self.backend,
        )
        name = getattr(workload, "name", workload.__class__.__name__)
        with get_tracer().span("profile", workload=name, engine=self.engine):
            profile = session.profile(
                workload.trace(),
                allocator=getattr(workload, "allocator", None),
                image=getattr(workload, "image", None),
            )
            if self.inject is not None and self.inject:
                profile.sampling.samples = self.inject.apply(
                    profile.sampling.samples
                )
                profile.fault_report = self.inject.last_report
                lost = (
                    profile.fault_report.records_in
                    - profile.fault_report.records_out
                )
                if lost > 0:
                    get_registry().counter("pmu.samples_dropped").inc(lost)
        return profile

    def analyze(self, profile: RawProfile, workload_name: str = "") -> ConflictReport:
        """Offline phase: loops, RCDs, classification, attribution."""
        return self.analyzer.analyze(profile, workload_name=workload_name)

    def run(self, workload: Workload) -> ConflictReport:
        """Profile then analyze in one call.

        In strict mode an event-less run raises; in lenient mode every
        degradation — including a completely empty profile — comes back as
        a best-effort report with ``data_quality`` warnings.

        The :class:`~repro.pmu.monitor.RawProfile` of the online phase is
        attached as ``report.raw_profile``, so callers needing both (the
        CLI's compare path, manifest writers, sample dumps) never
        re-profile.
        """
        name = getattr(workload, "name", workload.__class__.__name__)
        screen = None
        if self.screen_first:
            from repro.analysis.screening import SCREEN_CLEAR

            registry = get_registry()
            screen = self.screen(workload)
            if screen is None:
                registry.counter("analysis.screen.unavailable").inc()
            elif screen.verdict == SCREEN_CLEAR:
                registry.counter("analysis.screen.simulations_skipped").inc()
                return self.analyzer.screened_report(name, screen)
            else:
                registry.counter("analysis.screen.simulations_run").inc()
        profile = self.profile(workload)
        if profile.sampling.sample_count == 0 and profile.sampling.total_events == 0:
            if self.strict:
                raise AnalysisError(
                    f"workload {name!r} produced no L1 miss events; nothing to analyze"
                )
        report = self.analyze(profile, workload_name=name)
        report.raw_profile = profile
        report.screen = screen
        return report
