"""Analytical conflict screening: birthday-paradox passes that gate the simulator.

The cheapest rung of the analysis ladder (screen → predict → simulate).
"Appearances of the Birthday Paradox in High Performance Computing" gives
closed-form collision probabilities for k base addresses landing in the
same cache set; this module turns that arithmetic — plus an O(k·d)
stride-folding estimate that never enumerates a footprint — into cached
:class:`~repro.analysis.framework.AnalysisPass`es whose verdict
(``clear`` / ``suspect`` / ``unknown``) decides whether a request needs
the simulator at all.

Two independent signals feed one calibrated suspicion score:

- **Stride folding** — for every reuse window (same carrier rule as
  :class:`~repro.analysis.pressure.SetPressureAnalysis`), estimate the
  distinct lines and distinct sets the window touches from pure gcd
  arithmetic over the mapping period.  Estimated lines-per-set above the
  associativity, concentrated on a minority of sets, is the padding-bug
  signature; the same overload spread uniformly is capacity, not
  conflict, and is gated out exactly as the exact pressure pass does.
- **Birthday clustering** — the k distinct arrays a loop touches are k
  "random" base placements into ``num_sets`` buckets.  The exact and
  asymptotic collision probabilities say how surprising sharing is; a
  union-bound p-value on the *observed* maximum start-set occupancy says
  whether this particular placement is suspiciously aligned (the classic
  power-of-two-allocation pathology).

Unlike :class:`SetPressureAnalysis` (exact, O(mapping_period) per
window), everything here is O(accesses · dims): cheap enough to run on
every request at fleet scale.  The price is calibration rather than
exactness — scores in the mid-band return ``unknown`` and fall through
to the simulator instead of guessing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.access import AccessPatternAnalysis, LoopAccessPattern
from repro.analysis.descriptors import AccessDim, AffineAccess
from repro.analysis.framework import AnalysisCache, AnalysisPass
from repro.analysis.model import StaticModel
from repro.cache.geometry import CacheGeometry
from repro.errors import AnalysisError
from repro.obs.metrics import get_registry

#: Verdicts of the screen's decision rule.
SCREEN_CLEAR = "clear"
SCREEN_SUSPECT = "suspect"
SCREEN_UNKNOWN = "unknown"

#: Scores at or above this are ``suspect`` (a fold ratio of 2x the
#: associativity, or an observed placement with p-value <= 0.5).
SUSPECT_SCORE = 0.5
#: Scores at or below this are ``clear``; the mid-band is ``unknown``
#: and falls through to the simulator.
CLEAR_SCORE = 0.1
#: Windows spreading their load over at least this fraction of all sets
#: are capacity-like, not conflicts (mirrors SetPressureAnalysis).
CAPACITY_UTILIZATION = 0.75


# ---------------------------------------------------------------------------
# Part (a): birthday-collision probabilities.
# ---------------------------------------------------------------------------


def exact_collision_probability(streams: int, num_sets: int) -> float:
    """Exact P(any two of k uniform placements share a set).

    The birthday bound: ``1 - prod_{i<k} (1 - i/s)``.  Pigeonhole makes
    it exactly 1.0 once ``streams > num_sets``.
    """
    if streams < 0 or num_sets <= 0:
        raise AnalysisError(
            f"need streams >= 0 and num_sets > 0: {streams}, {num_sets}"
        )
    if streams <= 1:
        return 0.0
    if streams > num_sets:
        return 1.0
    no_collision = 1.0
    for i in range(1, streams):
        no_collision *= 1.0 - i / num_sets
    return 1.0 - no_collision


def asymptotic_collision_probability(streams: int, num_sets: int) -> float:
    """Asymptotic birthday bound ``1 - exp(-k(k-1) / 2s)``.

    The standard large-s approximation; reported alongside the exact
    value so readers can see how tight it is at cache-sized s.
    """
    if streams < 0 or num_sets <= 0:
        raise AnalysisError(
            f"need streams >= 0 and num_sets > 0: {streams}, {num_sets}"
        )
    if streams <= 1:
        return 0.0
    return 1.0 - math.exp(-streams * (streams - 1) / (2.0 * num_sets))


# ---------------------------------------------------------------------------
# Part (b): occupancy distribution under random placement.
# ---------------------------------------------------------------------------


def expected_occupancy(streams: int, num_sets: int) -> float:
    """Expected streams per set under uniform placement: ``k / s``."""
    if num_sets <= 0:
        raise AnalysisError(f"num_sets must be positive: {num_sets}")
    return streams / num_sets


def occupancy_pmf(streams: int, num_sets: int, occupancy: int) -> float:
    """P(one fixed set holds exactly ``occupancy`` of k placements).

    Binomial(k, 1/s) — placements are independent and uniform.
    """
    if occupancy < 0 or occupancy > streams:
        return 0.0
    p = 1.0 / num_sets
    return (
        math.comb(streams, occupancy)
        * p**occupancy
        * (1.0 - p) ** (streams - occupancy)
    )


def occupancy_tail(streams: int, num_sets: int, occupancy: int) -> float:
    """P(one fixed set holds at least ``occupancy`` placements)."""
    if occupancy <= 0:
        return 1.0
    return sum(
        occupancy_pmf(streams, num_sets, m)
        for m in range(occupancy, streams + 1)
    )


def expected_sets_at_or_above(streams: int, num_sets: int, occupancy: int) -> float:
    """Expected number of sets holding >= ``occupancy`` placements."""
    return num_sets * occupancy_tail(streams, num_sets, occupancy)


def overflow_pvalue(streams: int, num_sets: int, observed_max: int) -> float:
    """Union-bound P(max set occupancy >= observed) under random placement.

    Small values mean the observed base-address clustering is *more*
    aligned than chance — the calibrated "suspiciously placed" signal.
    """
    return min(1.0, num_sets * occupancy_tail(streams, num_sets, observed_max))


# ---------------------------------------------------------------------------
# Stride-folding estimates (no footprint enumeration).
# ---------------------------------------------------------------------------


def _dim_line_span(stride: int, extent: int, line_size: int) -> int:
    """Distinct cache lines one dimension's progression can span."""
    if extent <= 1 or stride == 0:
        return 1
    step = abs(stride)
    if step >= line_size:
        return extent
    return min(extent, step * (extent - 1) // line_size + 1)


def _dim_set_span(stride: int, extent: int, geometry: CacheGeometry) -> int:
    """Estimated distinct set indices one dimension's progression visits.

    The progression ``i * stride mod period`` lives in the subgroup of
    multiples of ``g = gcd(stride, period)``, which reaches
    ``period / max(g, line_size)`` distinct sets in a full cycle; a
    partial walk covers the visited fraction of that.  Exact when the
    walk is contiguous, a uniform-coverage estimate otherwise — both
    power-of-two arithmetic, O(1) per dimension.
    """
    period = geometry.mapping_period
    if extent <= 1:
        return 1
    step = abs(stride) % period
    if step == 0:
        return 1
    g = math.gcd(step, period)
    cycle = period // g
    reps = min(extent, cycle)
    coarse = max(g, geometry.line_size)
    return max(1, min(period // coarse, (reps * g) // coarse))


@dataclass
class WindowEstimate:
    """Folding estimate for one reuse window of one access.

    Attributes:
        label: Array label of the owning access.
        reuse_dim: Index of the reuse-carrying dimension.
        est_lines: Estimated distinct lines live in the window.
        est_sets: Estimated distinct sets those lines fold onto.
        load: ``est_lines / est_sets`` — estimated lines per set.
        utilization: ``est_sets / num_sets``.
        capacity_like: Overloaded but spread over nearly all sets.
        conflicting: Overloaded on a minority of sets — the conflict
            signature.
        pressure_ratio: ``load / ways`` (> 1 means overflow).
    """

    label: str
    reuse_dim: int
    est_lines: int
    est_sets: int
    load: float
    utilization: float
    capacity_like: bool
    conflicting: bool
    pressure_ratio: float

    def describe(self) -> str:
        """One-line rendering for reports."""
        kind = (
            "CONFLICT"
            if self.conflicting
            else ("capacity" if self.capacity_like else "ok")
        )
        return (
            f"{self.label}@dim{self.reuse_dim}: ~{self.est_lines} lines / "
            f"{self.est_sets} sets = {self.load:.1f}/set "
            f"(ratio {self.pressure_ratio:.2f}) {kind}"
        )


def estimate_windows(
    access: AffineAccess, geometry: CacheGeometry
) -> List[WindowEstimate]:
    """Folding estimates for every reuse window of one access.

    Carrier rule matches :class:`SetPressureAnalysis`: a dimension with
    ``|stride| < line_size`` (including 0) revisits its line, so the
    dimensions nested inside it must stay resident between revisits.
    """
    windows: List[WindowEstimate] = []
    for index, dim in enumerate(access.dims):
        if abs(dim.stride) >= geometry.line_size:
            continue
        inner = access.dims[index + 1 :]
        if not inner:
            continue
        windows.append(_estimate_window(access.label, index, inner, geometry))
    return windows


def _estimate_window(
    label: str,
    reuse_dim: int,
    inner: Sequence[AccessDim],
    geometry: CacheGeometry,
) -> WindowEstimate:
    lines = 1
    sets = 1
    for dim in inner:
        lines *= _dim_line_span(dim.stride, dim.extent, geometry.line_size)
        sets *= _dim_set_span(dim.stride, dim.extent, geometry)
    sets = min(sets, geometry.num_sets)
    lines = max(lines, sets)
    load = lines / sets
    utilization = sets / geometry.num_sets
    ratio = load / geometry.ways
    overflow = load > geometry.ways
    capacity_like = overflow and utilization >= CAPACITY_UTILIZATION
    return WindowEstimate(
        label=label,
        reuse_dim=reuse_dim,
        est_lines=lines,
        est_sets=sets,
        load=load,
        utilization=utilization,
        capacity_like=capacity_like,
        conflicting=overflow and not capacity_like,
        pressure_ratio=ratio,
    )


# ---------------------------------------------------------------------------
# The passes.
# ---------------------------------------------------------------------------


@dataclass
class StreamPlacement:
    """One array's base placement within a loop.

    Attributes:
        label: Allocation label.
        base: First accessed address.
        set_index: Cache set the base lands in.
        lines_live: Whether any of the label's accesses carries reuse
            (only live lines can collide with each other).
    """

    label: str
    base: int
    set_index: int
    lines_live: bool


class StreamPlacementAnalysis(AnalysisPass):
    """Per-loop base placements and folding window estimates."""

    requires = (AccessPatternAnalysis,)

    placements_by_loop: Dict[str, List[StreamPlacement]]
    windows_by_loop: Dict[str, List[WindowEstimate]]

    def analyze(self) -> None:
        patterns = self.request(AccessPatternAnalysis)
        geometry = self.model.geometry
        self.placements_by_loop = {}
        self.windows_by_loop = {}
        for pattern in patterns.patterns:
            placements: Dict[str, StreamPlacement] = {}
            windows: List[WindowEstimate] = []
            for access in pattern.accesses:
                access_windows = estimate_windows(access, geometry)
                windows.extend(access_windows)
                has_reuse = bool(access_windows) or any(
                    dim.stride == 0 for dim in access.dims
                )
                existing = placements.get(access.label)
                if existing is None:
                    placements[access.label] = StreamPlacement(
                        label=access.label,
                        base=access.base,
                        set_index=geometry.set_index(access.base),
                        lines_live=has_reuse,
                    )
                elif has_reuse and not existing.lines_live:
                    existing.lines_live = True
            self.placements_by_loop[pattern.loop_name] = list(
                placements.values()
            )
            self.windows_by_loop[pattern.loop_name] = windows


@dataclass
class LoopScreen:
    """Screen verdict and supporting statistics for one loop.

    Attributes:
        loop_name: ``file:line`` loop identity.
        stream_count: Distinct arrays (k of the birthday model).
        collision_probability: Exact P(any two bases share a set).
        collision_probability_asymptotic: ``1 - exp(-k(k-1)/2s)``.
        expected_occupancy: ``k / num_sets``.
        random_overflow_probability: Union-bound P(any set holds more
            than ``ways`` bases) under random placement.
        observed_max_occupancy: Largest observed start-set occupancy
            among live streams.
        occupancy_pvalue: Union-bound P(max occupancy >= observed) —
            small means suspiciously aligned.
        windows: Folding estimates for every reuse window.
        fold_score: Suspicion from the folding signal.
        birthday_score: Suspicion from the observed base clustering.
        score: ``max(fold_score, birthday_score)``.
        verdict: ``clear`` / ``suspect`` / ``unknown``.
        reasons: Human-readable justification lines.
    """

    loop_name: str
    stream_count: int
    collision_probability: float
    collision_probability_asymptotic: float
    expected_occupancy: float
    random_overflow_probability: float
    observed_max_occupancy: int
    occupancy_pvalue: float
    windows: List[WindowEstimate] = field(default_factory=list)
    fold_score: float = 0.0
    birthday_score: float = 0.0
    score: float = 0.0
    verdict: str = SCREEN_UNKNOWN
    reasons: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """One-line rendering for the text report."""
        return (
            f"{self.loop_name:<28} k={self.stream_count:>2} "
            f"P(collide)={self.collision_probability:.3f} "
            f"maxocc={self.observed_max_occupancy} "
            f"p={self.occupancy_pvalue:.3f} "
            f"score={self.score:.2f} {self.verdict.upper()}"
        )


@dataclass
class ScreeningReport:
    """Workload-level screen decision.

    Attributes:
        workload_name: Report header.
        geometry: Geometry screened against.
        loops: Per-loop screens, declaration order.
        verdict: ``suspect`` if any loop is suspect, else ``unknown``
            if anything is unresolved or mid-band, else ``clear``.
        score: Maximum loop score.
        reasons: Workload-level caveats (hashed geometry, unresolved
            accesses).
    """

    workload_name: str
    geometry: CacheGeometry
    loops: List[LoopScreen] = field(default_factory=list)
    verdict: str = SCREEN_UNKNOWN
    score: float = 0.0
    reasons: List[str] = field(default_factory=list)

    @property
    def suspect_loops(self) -> List[LoopScreen]:
        """Loops the screen wants simulated."""
        return [loop for loop in self.loops if loop.verdict == SCREEN_SUSPECT]

    def to_record(self) -> Dict[str, object]:
        """JSON-able summary for manifests and service responses."""
        return {
            "verdict": self.verdict,
            "score": round(self.score, 4),
            "loops": {
                loop.loop_name: {
                    "verdict": loop.verdict,
                    "score": round(loop.score, 4),
                    "streams": loop.stream_count,
                    "collision_probability": round(
                        loop.collision_probability, 4
                    ),
                    "occupancy_pvalue": round(loop.occupancy_pvalue, 4),
                }
                for loop in self.loops
            },
            "reasons": list(self.reasons),
        }

    def render(self) -> str:
        """Text report for ``ccprof screen``."""
        lines = [
            f"screen: {self.workload_name} on {self.geometry.describe()}",
            f"  verdict: {self.verdict.upper()}  score={self.score:.2f}",
        ]
        for reason in self.reasons:
            lines.append(f"  note: {reason}")
        for loop in self.loops:
            lines.append(f"  {loop.describe()}")
            for reason in loop.reasons:
                lines.append(f"      {reason}")
        return "\n".join(lines)


class ScreeningAnalysis(AnalysisPass):
    """Combine folding and birthday signals into the screen decision."""

    requires = (AccessPatternAnalysis, StreamPlacementAnalysis)

    report: ScreeningReport

    def analyze(self) -> None:
        patterns = self.request(AccessPatternAnalysis)
        placements = self.request(StreamPlacementAnalysis)
        geometry = self.model.geometry
        modular = getattr(geometry, "modular_indexing", True)
        report = ScreeningReport(
            workload_name=self.model.workload_name, geometry=geometry
        )
        for pattern in patterns.patterns:
            loop = self._screen_loop(
                pattern,
                placements.placements_by_loop.get(pattern.loop_name, []),
                placements.windows_by_loop.get(pattern.loop_name, []),
                geometry,
                modular,
            )
            report.loops.append(loop)
        if not modular:
            report.reasons.append(
                "hashed index geometry: folding estimates do not apply "
                "(ROADMAP item 3); deferring to the simulator"
            )
        if patterns.unresolved:
            report.reasons.append(
                f"{len(patterns.unresolved)} access(es) resolved to no "
                "loop; the screen cannot vouch for them"
            )
        report.verdict, report.score = self._workload_verdict(
            report, bool(patterns.unresolved), modular
        )
        registry = get_registry()
        registry.counter("analysis.screen.loops_screened").inc(
            len(report.loops)
        )
        registry.counter(f"analysis.screen.verdict.{report.verdict}").inc()
        self.report = report

    def _screen_loop(
        self,
        pattern: LoopAccessPattern,
        placements: List[StreamPlacement],
        windows: List[WindowEstimate],
        geometry: CacheGeometry,
        modular: bool,
    ) -> LoopScreen:
        streams = len(placements)
        live = [p for p in placements if p.lines_live]
        occupancy: Dict[int, int] = {}
        for placement in live:
            occupancy[placement.set_index] = (
                occupancy.get(placement.set_index, 0) + 1
            )
        observed_max = max(occupancy.values()) if occupancy else 0
        pvalue = (
            overflow_pvalue(len(live), geometry.num_sets, observed_max)
            if observed_max
            else 1.0
        )
        loop = LoopScreen(
            loop_name=pattern.loop_name,
            stream_count=streams,
            collision_probability=exact_collision_probability(
                streams, geometry.num_sets
            ),
            collision_probability_asymptotic=asymptotic_collision_probability(
                streams, geometry.num_sets
            ),
            expected_occupancy=expected_occupancy(streams, geometry.num_sets),
            random_overflow_probability=overflow_pvalue(
                streams, geometry.num_sets, geometry.ways + 1
            ),
            observed_max_occupancy=observed_max,
            occupancy_pvalue=pvalue,
            windows=windows,
        )
        if not modular:
            loop.verdict = SCREEN_UNKNOWN
            loop.reasons.append("hashed index geometry: cannot screen")
            return loop
        worst: Optional[WindowEstimate] = None
        for window in windows:
            if window.conflicting and (
                worst is None or window.pressure_ratio > worst.pressure_ratio
            ):
                worst = window
        if worst is not None:
            loop.fold_score = 1.0 - math.exp(1.0 - worst.pressure_ratio)
            loop.reasons.append(f"folding: {worst.describe()}")
        if observed_max > geometry.ways:
            loop.birthday_score = 1.0 - pvalue
            loop.reasons.append(
                f"birthday: {observed_max} live bases share one set "
                f"(> {geometry.ways} ways, p={pvalue:.3f})"
            )
        loop.score = max(loop.fold_score, loop.birthday_score)
        if loop.score >= SUSPECT_SCORE:
            loop.verdict = SCREEN_SUSPECT
        elif loop.score <= CLEAR_SCORE:
            loop.verdict = SCREEN_CLEAR
        else:
            loop.verdict = SCREEN_UNKNOWN
            loop.reasons.append(
                f"mid-band score {loop.score:.2f}: deferring to simulator"
            )
        return loop

    @staticmethod
    def _workload_verdict(
        report: ScreeningReport, has_unresolved: bool, modular: bool
    ) -> Tuple[str, float]:
        score = max((loop.score for loop in report.loops), default=0.0)
        verdicts = {loop.verdict for loop in report.loops}
        if SCREEN_SUSPECT in verdicts:
            return SCREEN_SUSPECT, score
        if SCREEN_UNKNOWN in verdicts or has_unresolved or not modular:
            return SCREEN_UNKNOWN, score
        return SCREEN_CLEAR, score


def screen_workload(
    workload: object,
    geometry: Optional[CacheGeometry] = None,
    cache: Optional[AnalysisCache] = None,
) -> ScreeningReport:
    """Screen one workload — zero trace accesses.

    Raises:
        AnalysisError: When the workload declares no access patterns
            (the screen, like prediction, needs declarations).
    """
    if cache is None:
        model = StaticModel.from_workload(workload, geometry=geometry)
        cache = AnalysisCache(model)
    return cache.request(ScreeningAnalysis).report
