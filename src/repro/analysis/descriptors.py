"""Affine access descriptors: the static analog of a memory trace.

Every built-in workload's kernel is a loop nest over arrays with affine
subscripts, so its access stream is fully described — without running it —
by a base address plus one ``(stride, extent)`` pair per loop dimension.
"Theory and Practice of Finding Eviction Sets" (Vila et al.) treats
conflict groups as exactly this kind of arithmetic object over index bits;
these descriptors are what the :mod:`repro.analysis` passes do that
arithmetic on.

Descriptors deliberately know nothing about the rest of the system: no
trace, no cache, no CFG.  Workloads declare them (see
``TraceWorkload.access_patterns``), and the analysis passes consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.errors import AnalysisError


@dataclass(frozen=True)
class AccessDim:
    """One loop dimension of an affine access.

    Attributes:
        stride: Byte distance between consecutive iterations of this
            dimension (0 when the subscript does not depend on it;
            negative for descending walks).
        extent: Trip count of the dimension (>= 1).
    """

    stride: int
    extent: int

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise AnalysisError(f"dimension extent must be >= 1: {self.extent}")


@dataclass(frozen=True)
class AffineAccess:
    """One statically-declared affine memory access.

    The access touches ``base + sum(i_d * dims[d].stride)`` for every
    point of the iteration space, ``elem_size`` bytes at a time.

    Attributes:
        ip: Instruction address the access is issued from — the key that
            resolves it to a loop in the Havlak forest.
        label: Allocation label of the array it touches.
        base: Address of the first accessed element.
        elem_size: Bytes read or written per access.
        dims: Loop dimensions, outermost first.
        kind: ``"load"`` or ``"store"`` (informational).
    """

    ip: int
    label: str
    base: int
    elem_size: int
    dims: Tuple[AccessDim, ...]
    kind: str = "load"

    def __post_init__(self) -> None:
        if self.elem_size <= 0:
            raise AnalysisError(f"elem_size must be positive: {self.elem_size}")
        if self.kind not in ("load", "store"):
            raise AnalysisError(f"kind must be 'load' or 'store': {self.kind!r}")

    @property
    def trip_count(self) -> int:
        """Total static accesses: the product of all dimension extents."""
        total = 1
        for dim in self.dims:
            total *= dim.extent
        return total

    def describe(self) -> str:
        """Compact rendering, e.g. ``B[+0x8*128][+0x400*128]``."""
        parts = "".join(f"[{dim.stride:+d}B x{dim.extent}]" for dim in self.dims)
        return f"{self.label}{parts} ({self.kind})"


def _dims_from_strides(strides_extents: Iterable[Tuple[int, int]]) -> Tuple[AccessDim, ...]:
    return tuple(AccessDim(stride=stride, extent=extent) for stride, extent in strides_extents)


def affine1d(
    array: object,
    ip: int,
    subscripts: Sequence[Tuple[int, int]],
    kind: str = "load",
    origin: int = 0,
) -> AffineAccess:
    """Describe an access to a 1-D array.

    Args:
        array: An ``Array1D`` (duck-typed: ``allocation``, ``elem_size``,
            ``addr``).
        ip: Issuing instruction address.
        subscripts: One ``(index_coefficient, extent)`` per loop dimension,
            outermost first; the subscript is ``origin + sum(coef * i_d)``.
        kind: ``"load"`` or ``"store"``.
        origin: Index of the first accessed element.
    """
    elem = int(array.elem_size)  # type: ignore[attr-defined]
    base = int(array.addr(origin))  # type: ignore[attr-defined]
    label = str(array.allocation.label)  # type: ignore[attr-defined]
    dims = _dims_from_strides((coef * elem, extent) for coef, extent in subscripts)
    return AffineAccess(ip=ip, label=label, base=base, elem_size=elem, dims=dims, kind=kind)


def affine2d(
    array: object,
    ip: int,
    subscripts: Sequence[Tuple[int, int, int]],
    kind: str = "load",
    origin: Tuple[int, int] = (0, 0),
) -> AffineAccess:
    """Describe an access ``A[row][col]`` with affine subscripts.

    Args:
        array: An ``Array2D`` (duck-typed: ``pitch``, ``elem_size``,
            ``addr``, ``allocation``).
        ip: Issuing instruction address.
        subscripts: One ``(row_coefficient, col_coefficient, extent)`` per
            loop dimension, outermost first.  Dimension ``d`` advances the
            address by ``row_coef * pitch + col_coef * elem_size`` bytes.
        kind: ``"load"`` or ``"store"``.
        origin: ``(row, col)`` of the first accessed element.
    """
    pitch = int(array.pitch)  # type: ignore[attr-defined]
    elem = int(array.elem_size)  # type: ignore[attr-defined]
    base = int(array.addr(*origin))  # type: ignore[attr-defined]
    label = str(array.allocation.label)  # type: ignore[attr-defined]
    dims = _dims_from_strides(
        (row_coef * pitch + col_coef * elem, extent)
        for row_coef, col_coef, extent in subscripts
    )
    return AffineAccess(ip=ip, label=label, base=base, elem_size=elem, dims=dims, kind=kind)


def affine3d(
    array: object,
    ip: int,
    subscripts: Sequence[Tuple[int, int, int, int]],
    kind: str = "load",
    origin: Tuple[int, int, int] = (0, 0, 0),
) -> AffineAccess:
    """Describe an access ``A[i][j][k]`` with affine subscripts.

    Args:
        array: An ``Array3D`` (duck-typed: ``extent1``, ``extent2``,
            ``elem_size``, ``addr``, ``allocation``).
        ip: Issuing instruction address.
        subscripts: One ``(i_coef, j_coef, k_coef, extent)`` per loop
            dimension, outermost first.
        kind: ``"load"`` or ``"store"``.
        origin: ``(i, j, k)`` of the first accessed element.
    """
    elem = int(array.elem_size)  # type: ignore[attr-defined]
    plane = int(array.extent1) * int(array.extent2) * elem  # type: ignore[attr-defined]
    row = int(array.extent2) * elem  # type: ignore[attr-defined]
    base = int(array.addr(*origin))  # type: ignore[attr-defined]
    label = str(array.allocation.label)  # type: ignore[attr-defined]
    dims = _dims_from_strides(
        (i_coef * plane + j_coef * row + k_coef * elem, extent)
        for i_coef, j_coef, k_coef, extent in subscripts
    )
    return AffineAccess(ip=ip, label=label, base=base, elem_size=elem, dims=dims, kind=kind)
