"""`StaticPaddingAnalysis`: padding advice from the static prediction.

The dynamic pipeline ends with ``recommend_pads_for_report`` over a
measured :class:`~repro.core.report.ConflictReport`; this pass closes the
same loop without a trace: arrays implicated by
:class:`~repro.analysis.prediction.ConflictPredictionAnalysis` are fed to
the same :func:`~repro.optimize.padding_advisor.advise_padding`
arithmetic, so a workload can be laid out correctly before it ever runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

from repro.analysis.framework import AnalysisPass
from repro.analysis.prediction import ConflictPredictionAnalysis

if TYPE_CHECKING:
    from repro.optimize.padding_advisor import PaddingRecommendation


@dataclass
class StaticPaddingAdvice:
    """Padding plan derived purely from static prediction.

    Attributes:
        recommendations: One per implicated 2-D array, in the prediction
            report's ranking order.
        skipped_labels: Implicated structures that are not 2-D arrays
            (row padding does not apply to them).
    """

    recommendations: List["PaddingRecommendation"] = field(default_factory=list)
    skipped_labels: List[str] = field(default_factory=list)

    @property
    def needed(self) -> List["PaddingRecommendation"]:
        """Recommendations that actually add padding."""
        return [rec for rec in self.recommendations if rec.is_needed]

    def render(self) -> str:
        """Text rendering for the CLI."""
        if not self.recommendations and not self.skipped_labels:
            return "no data structures implicated; no padding needed"
        lines = []
        for rec in self.recommendations:
            verdict = f"+{rec.pad_bytes} B/row" if rec.is_needed else "no pad needed"
            lines.append(f"{rec.label:<24} {verdict:<16} {rec.reason}")
        for label in self.skipped_labels:
            lines.append(f"{label:<24} {'skipped':<16} not a 2-D array")
        return "\n".join(lines)


class StaticPaddingAnalysis(AnalysisPass):
    """Advise row pads for arrays the static prediction implicates."""

    requires = (ConflictPredictionAnalysis,)

    advice: StaticPaddingAdvice

    def analyze(self) -> None:
        # Imported lazily: the advisor module imports the workloads package
        # (whose modules import repro.analysis), so a module-level import
        # here would close a cycle through partially-initialized modules.
        from repro.optimize.padding_advisor import advise_padding
        from repro.workloads.base import Array2D

        prediction = self.request(ConflictPredictionAnalysis)
        self.advice = StaticPaddingAdvice()
        seen: List[str] = []
        for loop in prediction.report.conflicting_loops():
            for structure in loop.data_structures:
                if structure.label in seen:
                    continue
                seen.append(structure.label)
                array = self.model.arrays.get(structure.label)
                if isinstance(array, Array2D):
                    self.advice.recommendations.append(
                        advise_padding(array, self.model.geometry)
                    )
                else:
                    self.advice.skipped_labels.append(structure.label)
