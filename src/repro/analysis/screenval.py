"""Cross-validate the analytical screen against the dynamic profiler.

Mirrors :mod:`repro.analysis.validation` (PR 3's methodology) one rung
down the ladder: for every workload in the suite, run the birthday /
folding screen (zero trace accesses) and a full CCProf run, then score
the screen's per-loop *verdict* against the measured binary conflict
verdict.  Because the screen's job is gating — ``clear`` skips the
simulator, anything else reaches it — the scoring is deliberately
strict:

- a **true positive** is a ``suspect`` loop the profiler confirms;
- a **false positive** is a ``suspect`` loop the profiler clears;
- a **miss** (false negative) is any measured conflict the screen did
  *not* mark suspect — ``unknown`` counts as a miss here, so a screen
  cannot buy recall by deferring everything;
- ``sim_skip_rate`` is the fraction of loops screened ``clear`` — the
  fleet-scale payoff ("most requests never reach the simulator").

``python -m repro.analysis.screenval`` runs the pinned suite, writes a
JSON + text report, and exits nonzero when the gates miss — the CI
``screen-validate`` step.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.screening import (
    SCREEN_CLEAR,
    SCREEN_SUSPECT,
    ScreeningReport,
    screen_workload,
)
from repro.analysis.validation import (
    VALIDATION_GEOMETRY,
    VALIDATION_PERIOD_MEAN,
    default_validation_suite,
    measured_victim_sets,
)
from repro.cache.geometry import CacheGeometry

#: The acceptance gates (ISSUE 9 / ROADMAP item 4).
SCREEN_PRECISION_GATE = 0.8
SCREEN_RECALL_GATE = 0.7


@dataclass
class LoopScreenValidation:
    """Screen verdict vs measured verdict for one loop."""

    workload_name: str
    loop_name: str
    verdict: str
    score: float
    measured_victims: int
    dynamic_cf: float = 0.0

    @property
    def measured_conflict(self) -> bool:
        """Whether the dynamic profiler found victim sets."""
        return self.measured_victims > 0


@dataclass
class ScreenValidationResult:
    """Suite-wide score of the screen against measurement."""

    loops: List[LoopScreenValidation] = field(default_factory=list)

    @property
    def true_positives(self) -> int:
        """Suspect verdicts the profiler confirms."""
        return sum(
            1
            for loop in self.loops
            if loop.verdict == SCREEN_SUSPECT and loop.measured_conflict
        )

    @property
    def false_positives(self) -> int:
        """Suspect verdicts the profiler clears."""
        return sum(
            1
            for loop in self.loops
            if loop.verdict == SCREEN_SUSPECT and not loop.measured_conflict
        )

    @property
    def false_negatives(self) -> int:
        """Measured conflicts not marked suspect (unknown counts)."""
        return sum(
            1
            for loop in self.loops
            if loop.verdict != SCREEN_SUSPECT and loop.measured_conflict
        )

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was suspected."""
        suspected = self.true_positives + self.false_positives
        return self.true_positives / suspected if suspected else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when nothing was measured."""
        measured = self.true_positives + self.false_negatives
        return self.true_positives / measured if measured else 1.0

    @property
    def deferred(self) -> int:
        """Loops the screen sent to the simulator (not clear/suspect)."""
        return sum(
            1
            for loop in self.loops
            if loop.verdict not in (SCREEN_CLEAR, SCREEN_SUSPECT)
        )

    @property
    def sim_skip_rate(self) -> float:
        """Fraction of loops screened ``clear`` — the fleet-scale win."""
        if not self.loops:
            return 0.0
        cleared = sum(1 for loop in self.loops if loop.verdict == SCREEN_CLEAR)
        return cleared / len(self.loops)

    @property
    def unsafe_skips(self) -> int:
        """Measured conflicts screened ``clear`` — the dangerous miss."""
        return sum(
            1
            for loop in self.loops
            if loop.verdict == SCREEN_CLEAR and loop.measured_conflict
        )

    def passes_gates(self) -> bool:
        """Whether precision/recall meet the CI gates."""
        return (
            self.precision >= SCREEN_PRECISION_GATE
            and self.recall >= SCREEN_RECALL_GATE
        )

    def to_record(self) -> Dict[str, object]:
        """JSON-able report for the CI artifact."""
        return {
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "gates": {
                "precision": SCREEN_PRECISION_GATE,
                "recall": SCREEN_RECALL_GATE,
                "passed": self.passes_gates(),
            },
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "deferred": self.deferred,
            "unsafe_skips": self.unsafe_skips,
            "sim_skip_rate": round(self.sim_skip_rate, 4),
            "loops": [
                {
                    "workload": loop.workload_name,
                    "loop": loop.loop_name,
                    "verdict": loop.verdict,
                    "score": round(loop.score, 4),
                    "measured_victims": loop.measured_victims,
                    "dynamic_cf": round(loop.dynamic_cf, 4),
                }
                for loop in self.loops
            ],
        }

    def render(self) -> str:
        """Per-loop comparison table plus the summary line."""
        lines = [
            f"  {'workload':<22} {'loop':<16} {'screen':<8} {'score':>5} "
            f"{'measured':>8}  cf"
        ]
        for loop in self.loops:
            measured = "CONFLICT" if loop.measured_conflict else "ok"
            lines.append(
                f"  {loop.workload_name:<22} {loop.loop_name:<16} "
                f"{loop.verdict:<8} {loop.score:>5.2f} {measured:>8}  "
                f"{loop.dynamic_cf:.3f}"
            )
        lines.append(
            f"  precision={self.precision:.3f} recall={self.recall:.3f} "
            f"skip rate={self.sim_skip_rate:.1%} "
            f"deferred={self.deferred} unsafe skips={self.unsafe_skips} "
            f"({len(self.loops)} loops)"
        )
        return "\n".join(lines)


def screen_cross_validate(
    workloads: Sequence[object],
    geometry: CacheGeometry = VALIDATION_GEOMETRY,
    period_mean: int = VALIDATION_PERIOD_MEAN,
    seed: int = 0,
) -> ScreenValidationResult:
    """Score the analytical screen against the dynamic profiler.

    For each workload, the screen runs from declarations alone; the
    dynamic side is a full CCProf run at a dense sampling period, read
    exactly as PR 3's cross-validation reads it.
    """
    from repro.core.profiler import CCProf
    from repro.pmu.periods import UniformJitterPeriod

    result = ScreenValidationResult()
    for workload in workloads:
        report: ScreeningReport = screen_workload(workload, geometry=geometry)
        profiler = CCProf(
            geometry=geometry,
            period=UniformJitterPeriod(period_mean),
            seed=seed,
        )
        profile = profiler.profile(workload)
        measured = measured_victim_sets(profile, geometry)
        name = str(getattr(workload, "name", type(workload).__name__))
        for loop in report.loops:
            victims, cf = measured.get(loop.loop_name, ([], 0.0))
            result.loops.append(
                LoopScreenValidation(
                    workload_name=name,
                    loop_name=loop.loop_name,
                    verdict=loop.verdict,
                    score=loop.score,
                    measured_victims=len(victims),
                    dynamic_cf=cf,
                )
            )
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI for the CI ``screen-validate`` step."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.screenval",
        description="cross-validate the analytical screen vs the profiler",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the JSON report here"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="dynamic-side sampling seed"
    )
    options = parser.parse_args(argv)
    result = screen_cross_validate(default_validation_suite(), seed=options.seed)
    print(result.render())
    if options.json:
        with open(options.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_record(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {options.json}")
    if not result.passes_gates():
        print(
            f"GATE MISS: precision {result.precision:.3f} "
            f"(need >= {SCREEN_PRECISION_GATE}) / recall "
            f"{result.recall:.3f} (need >= {SCREEN_RECALL_GATE})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
