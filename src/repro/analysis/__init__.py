"""Static conflict prediction: analysis passes over program structure.

Everything in this package runs with **zero trace execution**: the inputs
are a workload's declared affine access patterns (``AffineAccess``), its
program image (the CFG the Havlak analysis recovers loops from), and a
cache geometry.  From those three the passes predict victim sets, rank
loops by expected conflict contribution, and derive padding fixes — an
O(loop-nest) analysis where the dynamic profiler is O(trace).

The pass framework (:mod:`repro.analysis.framework`) follows the
analysis-cache idiom of modern SSA compilers: passes declare dependencies,
the cache runs each at most once per model, and invalidation cascades to
dependents.
"""

from repro.analysis.access import AccessPatternAnalysis, LoopAccessPattern
from repro.analysis.descriptors import (
    AccessDim,
    AffineAccess,
    affine1d,
    affine2d,
    affine3d,
)
from repro.analysis.framework import AnalysisCache, AnalysisPass
from repro.analysis.model import StaticModel
from repro.analysis.padding import StaticPaddingAnalysis
from repro.analysis.prediction import (
    ConflictPredictionAnalysis,
    StaticConflictReport,
    StaticLoopPrediction,
)
from repro.analysis.pressure import (
    SetPressureAnalysis,
    WindowPressure,
    footprint_residues,
    footprint_set_indices,
)
from repro.analysis.screening import (
    SCREEN_CLEAR,
    SCREEN_SUSPECT,
    SCREEN_UNKNOWN,
    LoopScreen,
    ScreeningAnalysis,
    ScreeningReport,
    StreamPlacementAnalysis,
    asymptotic_collision_probability,
    exact_collision_probability,
    screen_workload,
)
from repro.analysis.screenval import (
    ScreenValidationResult,
    screen_cross_validate,
)
from repro.analysis.validation import (
    CrossValidationResult,
    LoopValidation,
    cross_validate,
    default_validation_suite,
)

__all__ = [
    "AccessDim",
    "AccessPatternAnalysis",
    "AffineAccess",
    "AnalysisCache",
    "AnalysisPass",
    "ConflictPredictionAnalysis",
    "CrossValidationResult",
    "LoopAccessPattern",
    "LoopScreen",
    "LoopValidation",
    "SCREEN_CLEAR",
    "SCREEN_SUSPECT",
    "SCREEN_UNKNOWN",
    "ScreenValidationResult",
    "ScreeningAnalysis",
    "ScreeningReport",
    "SetPressureAnalysis",
    "StreamPlacementAnalysis",
    "StaticConflictReport",
    "StaticLoopPrediction",
    "StaticModel",
    "StaticPaddingAnalysis",
    "WindowPressure",
    "affine1d",
    "affine2d",
    "affine3d",
    "asymptotic_collision_probability",
    "cross_validate",
    "default_validation_suite",
    "exact_collision_probability",
    "footprint_residues",
    "footprint_set_indices",
    "screen_cross_validate",
    "screen_workload",
]
