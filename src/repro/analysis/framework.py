"""The analysis-pass framework: cached passes with dependency resolution.

Modeled on the ``IRAnalysis`` / ``analyses_cache`` architecture of SSA
compiler middle-ends (see SNIPPETS.md snippet 1): a pass is a class whose
``analyze`` method computes a result over the immutable inputs, requesting
other passes through the cache; the cache runs each pass at most once and
answers later requests from memory.

Two extensions matter here:

- **Dependency tracking** — every ``request`` issued while a pass runs is
  recorded, so :meth:`AnalysisCache.invalidate` can cascade to transitive
  dependents (a re-run of ``SetPressureAnalysis`` must also re-run
  ``ConflictPredictionAnalysis``, which consumed it).
- **Cycle detection** — a pass requesting itself, directly or through a
  chain, is a programming error and raises immediately instead of
  recursing forever.

The cache is thread-safe via deliberate **whole-cache serialization**:
``request`` holds one reentrant lock across the entire pass execution, so
concurrent requests — even for unrelated passes — run one at a time per
cache.  The lock is reentrant because a running pass requests its
dependencies on the same thread; holding it across ``analyze`` keeps the
``_running`` chain (cycle detection) and the dependency edges coherent —
without it, thread B would see thread A's in-progress chain and
misreport a circular dependency.  The coarseness is an accepted
trade-off: passes are cheap static analyses (milliseconds, versus the
simulations the service's degrade path is avoiding) and each runs at
most once per cache, while the profiling service keys one cache per
workload spec, so jobs for *different* workloads never contend.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set, Tuple, Type, TypeVar

from repro.errors import AnalysisError
from repro.obs.metrics import get_registry

if TYPE_CHECKING:
    from repro.analysis.model import StaticModel

PassT = TypeVar("PassT", bound="AnalysisPass")


class AnalysisPass(ABC):
    """One analysis over a :class:`~repro.analysis.model.StaticModel`.

    Subclasses implement :meth:`analyze`, storing their results as
    attributes; dependencies are obtained with ``self.request(OtherPass)``
    (or declared up front in :attr:`requires`, which the cache satisfies
    before ``analyze`` runs).
    """

    #: Passes the cache runs before this one's ``analyze``.
    requires: Tuple[Type["AnalysisPass"], ...] = ()

    def __init__(self, cache: "AnalysisCache") -> None:
        self.cache = cache
        self.model = cache.model

    @abstractmethod
    def analyze(self) -> None:
        """Compute this pass's results (store them on ``self``)."""

    def request(self, pass_type: Type[PassT]) -> PassT:
        """Obtain another pass's (cached) results, recording the edge."""
        return self.cache.request(pass_type)

    @classmethod
    def pass_name(cls) -> str:
        """Human name used in stats and error messages."""
        return cls.__name__


@dataclass
class CacheStats:
    """Run/hit counters for one :class:`AnalysisCache`."""

    runs: int = 0
    hits: int = 0
    invalidations: int = 0

    def describe(self) -> str:
        """One-line rendering for CLI output."""
        return (
            f"{self.runs} passes run, {self.hits} cache hits, "
            f"{self.invalidations} invalidations"
        )


@dataclass
class AnalysisCache:
    """Runs passes on demand and memoizes their results.

    Attributes:
        model: The immutable inputs every pass sees.
    """

    model: "StaticModel"
    stats: CacheStats = field(default_factory=CacheStats)
    _results: Dict[Type[AnalysisPass], AnalysisPass] = field(default_factory=dict)
    #: pass -> passes that requested it (reverse dependency edges).
    _dependents: Dict[Type[AnalysisPass], Set[Type[AnalysisPass]]] = field(
        default_factory=dict
    )
    _running: List[Type[AnalysisPass]] = field(default_factory=list)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def request(self, pass_type: Type[PassT]) -> PassT:
        """Return ``pass_type``'s results, running it first if needed."""
        with self._lock:
            self._record_dependency(pass_type)
            cached = self._results.get(pass_type)
            if cached is not None:
                self.stats.hits += 1
                get_registry().counter("analysis.pass_cache.hits").inc()
                return cached  # type: ignore[return-value]
            if pass_type in self._running:
                chain = " -> ".join(p.pass_name() for p in self._running)
                raise AnalysisError(
                    f"circular analysis dependency: {chain} -> "
                    f"{pass_type.pass_name()}"
                )
            self._running.append(pass_type)
            try:
                instance = pass_type(self)
                for dependency in pass_type.requires:
                    self.request(dependency)
                instance.analyze()
            finally:
                self._running.pop()
            self._results[pass_type] = instance
            self.stats.runs += 1
            get_registry().counter("analysis.pass_cache.runs").inc()
            return instance

    def _record_dependency(self, pass_type: Type[AnalysisPass]) -> None:
        if self._running:
            self._dependents.setdefault(pass_type, set()).add(self._running[-1])

    def has_result(self, pass_type: Type[AnalysisPass]) -> bool:
        """Whether ``pass_type`` has a cached result."""
        return pass_type in self._results

    def invalidate(self, pass_type: Type[AnalysisPass]) -> List[Type[AnalysisPass]]:
        """Drop a pass's cached result and, transitively, its dependents.

        Returns:
            The passes actually evicted, in eviction order.
        """
        evicted: List[Type[AnalysisPass]] = []
        worklist: List[Type[AnalysisPass]] = [pass_type]
        seen: Set[Type[AnalysisPass]] = set()
        with self._lock:
            while worklist:
                current = worklist.pop()
                if current in seen:
                    continue
                seen.add(current)
                if current in self._results:
                    del self._results[current]
                    evicted.append(current)
                    self.stats.invalidations += 1
                worklist.extend(self._dependents.get(current, ()))
        if evicted:
            get_registry().counter("analysis.pass_cache.invalidations").inc(
                len(evicted)
            )
        return evicted

    def invalidate_all(self) -> None:
        """Drop every cached result (e.g. after the model changed)."""
        with self._lock:
            if self._results:
                get_registry().counter("analysis.pass_cache.invalidations").inc(
                    len(self._results)
                )
            self.stats.invalidations += len(self._results)
            self._results.clear()
            self._dependents.clear()
