"""Cross-validation: static predictions scored against the dynamic profiler.

The tentpole claim of :mod:`repro.analysis` is that victim sets are
predictable from program structure alone.  This module makes the claim
falsifiable: run the *same* workload through the static passes (zero trace
accesses) and through the full CCProf pipeline (trace, PMU sampling, RCD
analysis), then score the predicted victim sets against the measured ones
loop by loop, micro-averaged over (loop, set) pairs.

``default_validation_suite`` pins the benchmark: the padding workload
family (symmetrization, gemm, 2mm, trmm, adi plus the jacobi/fdtd clean
controls), original and padded, on a deliberately small geometry so the
dynamic side stays fast enough for the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.framework import AnalysisCache
from repro.analysis.model import StaticModel
from repro.analysis.prediction import ConflictPredictionAnalysis, StaticConflictReport
from repro.cache.geometry import CacheGeometry

#: Small geometry for the suite: 16 sets x 4 ways keeps workloads tiny
#: (n=32..64) while preserving every conflict signature the full-size
#: kernels show on the paper's 64x8 L1.
VALIDATION_GEOMETRY = CacheGeometry(line_size=64, num_sets=16, ways=4)

#: Dense sampling for the dynamic side — small traces need small periods.
VALIDATION_PERIOD_MEAN = 7

#: A measured set is a victim when more than this share of its sampled
#: RCDs are short (mirrors the dynamic analyzer's Observation-2 reading).
MEASURED_VICTIM_MIN_SHARE = 0.25


def scaled_rcd_threshold(geometry: CacheGeometry) -> int:
    """The paper's RCD threshold, rescaled to the geometry's set count.

    The published threshold (8) is calibrated against the 64-set L1:
    a *uniform* sampled miss stream revisits a set every ``num_sets``
    samples, so P(RCD < 8) is ~0.12 there — comfortably under the 0.25 cf
    boundary.  Keeping threshold/num_sets fixed (1/8) preserves that
    streaming baseline on any geometry; the unscaled threshold on a 16-set
    validation cache would read healthy streaming as cf ~0.4.
    """
    return max(1, geometry.num_sets // 8)


def predict_conflicts(
    workload: object, geometry: Optional[CacheGeometry] = None
) -> StaticConflictReport:
    """Run the full static pass stack over one workload — no trace."""
    model = StaticModel.from_workload(workload, geometry=geometry)
    cache = AnalysisCache(model)
    return cache.request(ConflictPredictionAnalysis).report


@dataclass
class LoopValidation:
    """Predicted vs measured victim sets for one loop.

    Attributes:
        workload_name: Workload the loop belongs to.
        loop_name: ``file:line`` loop identity (shared by both sides).
        predicted: Static victim sets, sorted.
        measured: Dynamic victim sets, sorted.
        dynamic_cf: The profiler's contribution factor (context for
            disagreements).
    """

    workload_name: str
    loop_name: str
    predicted: List[int]
    measured: List[int]
    dynamic_cf: float = 0.0

    @property
    def true_positives(self) -> int:
        """Sets both sides agree are victims."""
        return len(set(self.predicted) & set(self.measured))

    @property
    def false_positives(self) -> int:
        """Sets predicted but not measured."""
        return len(set(self.predicted) - set(self.measured))

    @property
    def false_negatives(self) -> int:
        """Sets measured but not predicted."""
        return len(set(self.measured) - set(self.predicted))

    @property
    def agree(self) -> bool:
        """Whether both sides reach the same binary verdict."""
        return bool(self.predicted) == bool(self.measured)


@dataclass
class CrossValidationResult:
    """Suite-wide score of static prediction against measurement."""

    loops: List[LoopValidation] = field(default_factory=list)

    @property
    def true_positives(self) -> int:
        """Micro-summed agreeing victim sets."""
        return sum(loop.true_positives for loop in self.loops)

    @property
    def false_positives(self) -> int:
        """Micro-summed spurious predictions."""
        return sum(loop.false_positives for loop in self.loops)

    @property
    def false_negatives(self) -> int:
        """Micro-summed missed victims."""
        return sum(loop.false_negatives for loop in self.loops)

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was predicted."""
        predicted = self.true_positives + self.false_positives
        return self.true_positives / predicted if predicted else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when nothing was measured."""
        measured = self.true_positives + self.false_negatives
        return self.true_positives / measured if measured else 1.0

    @property
    def verdict_agreement(self) -> float:
        """Fraction of loops where the binary verdicts match."""
        if not self.loops:
            return 1.0
        return sum(loop.agree for loop in self.loops) / len(self.loops)

    def render(self) -> str:
        """Per-loop comparison table plus the summary line."""
        lines = [
            f"  {'workload':<22} {'loop':<16} {'pred':>5} {'meas':>5} "
            f"{'tp':>4} {'fp':>4} {'fn':>4}  cf"
        ]
        for loop in self.loops:
            lines.append(
                f"  {loop.workload_name:<22} {loop.loop_name:<16} "
                f"{len(loop.predicted):>5} {len(loop.measured):>5} "
                f"{loop.true_positives:>4} {loop.false_positives:>4} "
                f"{loop.false_negatives:>4}  {loop.dynamic_cf:.3f}"
            )
        lines.append(
            f"  precision={self.precision:.3f} recall={self.recall:.3f} "
            f"verdict agreement={self.verdict_agreement:.1%} "
            f"({len(self.loops)} loops)"
        )
        return "\n".join(lines)


def measured_victim_sets(
    profile: object, geometry: CacheGeometry
) -> Dict[str, Tuple[List[int], float]]:
    """Per-loop (victim sets, cf) from one raw dynamic profile.

    Mirrors the offline analyzer's reading: hot loops with enough samples
    and a conflicting contribution factor contribute their short-RCD sets;
    everything else measures as conflict-free.
    """
    from repro.core.attribution import attribute_code
    from repro.core.contribution import contribution_factor
    from repro.core.profiler import (
        DEFAULT_CF_BOUNDARY,
        DEFAULT_HOT_LOOP_SHARE,
        MIN_SAMPLES_FOR_RCD,
    )
    from repro.core.rcd import RcdArrayAnalysis
    from repro.program.symbols import Symbolizer

    threshold = scaled_rcd_threshold(geometry)
    sampling = profile.sampling  # type: ignore[attr-defined]
    symbolizer = Symbolizer(profile.image) if profile.image is not None else None  # type: ignore[attr-defined]
    code = attribute_code(sampling.samples, symbolizer)
    measured: Dict[str, Tuple[List[int], float]] = {}
    for group in code.loops:
        too_thin = (
            group.share < DEFAULT_HOT_LOOP_SHARE
            or group.count < MIN_SAMPLES_FOR_RCD
        )
        if too_thin:
            measured[group.loop_name] = ([], 0.0)
            continue
        addresses = np.fromiter(
            (sample.address for sample in group.samples), dtype=np.uint64
        )
        analysis = RcdArrayAnalysis.from_addresses(addresses, geometry)
        cf = contribution_factor(analysis, threshold)
        if cf >= DEFAULT_CF_BOUNDARY:
            victims = analysis.victim_sets(
                threshold, min_share=MEASURED_VICTIM_MIN_SHARE
            )
        else:
            victims = []
        measured[group.loop_name] = (victims, cf)
    return measured


def cross_validate(
    workloads: Sequence[object],
    geometry: CacheGeometry = VALIDATION_GEOMETRY,
    period_mean: int = VALIDATION_PERIOD_MEAN,
    seed: int = 0,
) -> CrossValidationResult:
    """Score static victim-set prediction against the dynamic profiler.

    For each workload, every loop with declared access patterns is
    compared: predicted victims from the static passes, measured victims
    from a full CCProf run at a dense sampling period.
    """
    from repro.core.profiler import CCProf
    from repro.pmu.periods import UniformJitterPeriod

    result = CrossValidationResult()
    for workload in workloads:
        report = predict_conflicts(workload, geometry=geometry)
        profiler = CCProf(
            geometry=geometry,
            period=UniformJitterPeriod(period_mean),
            seed=seed,
        )
        profile = profiler.profile(workload)
        measured = measured_victim_sets(profile, geometry)
        name = str(getattr(workload, "name", type(workload).__name__))
        for loop in report.loops:
            victims, cf = measured.get(loop.loop_name, ([], 0.0))
            result.loops.append(
                LoopValidation(
                    workload_name=name,
                    loop_name=loop.loop_name,
                    predicted=list(loop.victim_sets),
                    measured=list(victims),
                    dynamic_cf=cf,
                )
            )
    return result


def default_validation_suite() -> List[object]:
    """The pinned benchmark: padding workloads, original and padded.

    Sizes are scaled to :data:`VALIDATION_GEOMETRY` so each trace stays in
    the tens of thousands of accesses; every conflict signature (column
    walks folding onto few sets) and both clean controls (row-order
    stencils) survive the scaling.
    """
    from repro.workloads.adi import AdiWorkload
    from repro.workloads.polybench import (
        Fdtd2dWorkload,
        GemmWorkload,
        Jacobi2dWorkload,
        TrmmWorkload,
        TwoMmWorkload,
    )
    from repro.workloads.symmetrization import SymmetrizationWorkload

    return [
        SymmetrizationWorkload(n=32, pad_bytes=0, sweeps=2),
        SymmetrizationWorkload(n=32, pad_bytes=64, sweeps=2),
        GemmWorkload(n=32),
        GemmWorkload(n=32, pad_bytes=64),
        TwoMmWorkload(n=32),
        TwoMmWorkload(n=32, pad_bytes=64),
        TrmmWorkload(n=32),
        TrmmWorkload(n=32, pad_bytes=64),
        AdiWorkload(n=64, steps=1),
        AdiWorkload(n=64, pad_bytes=32, steps=1),
        Jacobi2dWorkload(n=64, steps=2),
        Fdtd2dWorkload(n=64, steps=2),
    ]
