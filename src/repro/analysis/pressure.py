"""`SetPressureAnalysis`: map affine accesses to cache-set pressure.

The mathematics is residue arithmetic over the cache mapping period
(Vila et al.'s view of conflict groups as arithmetic objects over index
bits):

- The **footprint** of an access — which sets it can ever touch — depends
  only on its dimension strides modulo ``mapping_period``.  Each dimension
  contributes the cyclic progression ``{i * stride mod period}``, whose
  distinct values number ``period / gcd(stride, period)``; the footprint is
  the sumset of the per-dimension progressions.  This is exact and costs
  O(period), never O(trip count).
- The **reuse window** of an access localizes conflict in time.  A
  dimension with ``|stride| < line_size`` (including stride 0) revisits the
  same cache line on consecutive iterations, so every line touched by the
  dimensions nested *inside* it must stay resident between revisits.  The
  window's per-set pressure is the count of distinct lines per set in that
  inner footprint; pressure above the associativity marks a **predicted
  victim set** — more live lines compete for the set than it has ways.
- A window whose pressure is high but *uniform* across nearly all sets is
  a capacity problem, not a conflict (the paper's distinction): those
  windows are gated out by a utilization/imbalance test rather than
  reported as victims.

Victim sets are finally widened by the **shift union**: outer dimensions
slide the window across memory, so every set the window's start can reach
contributes a shifted copy of the overflow pattern — matching how the
dynamic profiler accumulates victims over a whole run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.access import AccessPatternAnalysis
from repro.analysis.descriptors import AccessDim, AffineAccess
from repro.analysis.framework import AnalysisPass
from repro.cache.geometry import CacheGeometry
from repro.errors import AnalysisError


def residue_progression(stride: int, extent: int, period: int) -> np.ndarray:
    """Distinct values of ``i * stride mod period`` for ``0 <= i < extent``.

    Exact: the progression repeats with cycle ``period / gcd(stride,
    period)``, so extents beyond the cycle add nothing.
    """
    step = stride % period
    if step == 0 or extent <= 1:
        return np.zeros(1, dtype=np.int64)
    cycle = period // math.gcd(step, period)
    reps = min(extent, cycle)
    return np.unique((np.arange(reps, dtype=np.int64) * step) % period)


def footprint_residues(dims: Sequence[AccessDim], period: int) -> np.ndarray:
    """Distinct address offsets modulo ``period`` of a full iteration space.

    The sumset of the per-dimension progressions — exact, and bounded by
    ``period`` values regardless of trip counts.
    """
    residues = np.zeros(1, dtype=np.int64)
    for dim in dims:
        progression = residue_progression(dim.stride, dim.extent, period)
        if progression.size == 1 and progression[0] == 0:
            continue
        residues = np.unique(
            (residues[:, None] + progression[None, :]).ravel() % period
        )
    return residues


def footprint_set_indices(access: AffineAccess, geometry: CacheGeometry) -> np.ndarray:
    """Exact set-index residue classes of an access's element addresses.

    Equals ``{geometry.set_index(a)}`` over every address the iteration
    space generates, computed in O(mapping_period) by residue arithmetic
    (this equivalence is property-tested against brute-force enumeration).
    """
    period = geometry.mapping_period
    residues = footprint_residues(access.dims, period)
    offsets = (np.int64(access.base % period) + residues) % period
    return np.unique(offsets >> np.int64(geometry.offset_bits))


def _window_lines(
    base: int, dims: Sequence[AccessDim], elem_size: int, geometry: CacheGeometry,
    max_points: int,
) -> np.ndarray:
    """Distinct absolute cache-line numbers of one window instance.

    Enumerates the window's *distinct byte offsets* (deduplicated per
    dimension, so repeated/zero strides do not multiply work), clamped at
    ``max_points`` offsets.
    """
    offsets = np.zeros(1, dtype=np.int64)
    for dim in dims:
        extent = dim.extent
        if offsets.size * extent > max_points:
            extent = max(1, max_points // max(1, offsets.size))
        steps = np.arange(extent, dtype=np.int64) * np.int64(dim.stride)
        offsets = np.unique((offsets[:, None] + steps[None, :]).ravel())
    addresses = np.int64(base) + offsets
    shift = np.int64(geometry.offset_bits)
    line_cols = [addresses >> shift]
    if elem_size > 1:
        line_cols.append((addresses + np.int64(elem_size - 1)) >> shift)
    return np.unique(np.concatenate(line_cols))


@dataclass
class WindowPressure:
    """Pressure of one reuse window of one access.

    Attributes:
        access: The access the window belongs to.
        reuse_dim: Index (into ``access.dims``) of the reuse-carrying
            dimension; the window is everything nested inside it.
        pressure: Per-set distinct-line counts (length ``num_sets``).
        overflow_sets: Sets whose pressure exceeds the associativity.
        utilization: Fraction of sets with nonzero pressure.
        capacity_like: True when overflow is uniform across nearly all
            sets — a capacity/streaming signature, not a conflict.
        conflicting: Overflow present and not capacity-like.
        victim_sets: Predicted victims after the outer-dimension shift
            union (empty unless ``conflicting``).
    """

    access: AffineAccess
    reuse_dim: int
    pressure: np.ndarray
    overflow_sets: np.ndarray
    utilization: float
    capacity_like: bool
    conflicting: bool
    victim_sets: np.ndarray


class SetPressureAnalysis(AnalysisPass):
    """Per-loop static set pressure, window conflicts, and victim sets."""

    requires = (AccessPatternAnalysis,)

    #: Windows whose nonzero pressure spans at least this fraction of all
    #: sets *and* is near-uniform are classified capacity-like.
    capacity_utilization: float = 0.75
    #: Near-uniform means max/mean pressure at or below this ratio.
    imbalance_ratio: float = 2.0
    #: Clamp on enumerated distinct offsets per window.
    max_window_points: int = 1 << 20

    windows_by_loop: Dict[str, List[WindowPressure]]
    victim_sets_by_loop: Dict[str, np.ndarray]
    footprint_sets_by_loop: Dict[str, np.ndarray]
    #: Accesses (by id) with at least one conflicting window.
    conflicting_accesses: Dict[str, List[AffineAccess]]

    def analyze(self) -> None:
        patterns = self.request(AccessPatternAnalysis)
        geometry = self.model.geometry
        if not getattr(geometry, "modular_indexing", True):
            # ROADMAP item 3's documented limitation, made loud: every
            # formula here reasons in residue classes modulo
            # ``mapping_period``, which only equal set indices when the
            # index bits are taken plainly.  A hashed geometry (e.g.
            # XorFoldedGeometry) would yield confidently wrong victim
            # sets, so refuse with a typed error instead.
            raise AnalysisError(
                f"{type(geometry).__name__} hashes its set index; "
                "SetPressureAnalysis assumes modular index bits "
                "(ROADMAP item 3) — use the dynamic profiler or the "
                "screening pass's 'unknown' path for hashed geometries"
            )
        self.windows_by_loop = {}
        self.victim_sets_by_loop = {}
        self.footprint_sets_by_loop = {}
        self.conflicting_accesses = {}
        for pattern in patterns.patterns:
            windows: List[WindowPressure] = []
            conflicting: List[AffineAccess] = []
            victims = np.empty(0, dtype=np.int64)
            footprint: List[np.ndarray] = []
            for access in pattern.accesses:
                footprint.append(footprint_set_indices(access, geometry))
                for window in self._access_windows(access, geometry):
                    windows.append(window)
                    if window.conflicting:
                        victims = np.union1d(victims, window.victim_sets)
                        if not any(existing is access for existing in conflicting):
                            conflicting.append(access)
            self.windows_by_loop[pattern.loop_name] = windows
            self.victim_sets_by_loop[pattern.loop_name] = victims
            self.footprint_sets_by_loop[pattern.loop_name] = (
                np.unique(np.concatenate(footprint))
                if footprint
                else np.empty(0, dtype=np.int64)
            )
            self.conflicting_accesses[pattern.loop_name] = conflicting

    def _access_windows(
        self, access: AffineAccess, geometry: CacheGeometry
    ) -> List[WindowPressure]:
        windows: List[WindowPressure] = []
        for index, dim in enumerate(access.dims):
            if abs(dim.stride) >= geometry.line_size:
                continue  # not a reuse carrier: successive iterations change line
            inner = access.dims[index + 1 :]
            if not inner:
                continue  # innermost reuse: window is a single access, trivial
            windows.append(self._window_pressure(access, index, inner, geometry))
        return windows

    def _window_pressure(
        self,
        access: AffineAccess,
        reuse_dim: int,
        inner: Sequence[AccessDim],
        geometry: CacheGeometry,
    ) -> WindowPressure:
        lines = _window_lines(
            access.base, inner, access.elem_size, geometry, self.max_window_points
        )
        sets = (lines & np.int64(geometry.num_sets - 1)).astype(np.int64)
        pressure = np.bincount(sets, minlength=geometry.num_sets)
        overflow = np.flatnonzero(pressure > geometry.ways).astype(np.int64)
        nonzero = pressure[pressure > 0]
        utilization = float(nonzero.size) / geometry.num_sets
        capacity_like = bool(
            overflow.size
            and utilization >= self.capacity_utilization
            and float(nonzero.max()) <= self.imbalance_ratio * float(nonzero.mean())
        )
        conflicting = bool(overflow.size) and not capacity_like
        victims = (
            self._shift_union(access, reuse_dim, overflow, geometry)
            if conflicting
            else np.empty(0, dtype=np.int64)
        )
        return WindowPressure(
            access=access,
            reuse_dim=reuse_dim,
            pressure=pressure,
            overflow_sets=overflow,
            utilization=utilization,
            capacity_like=capacity_like,
            conflicting=conflicting,
            victim_sets=victims,
        )

    def _shift_union(
        self,
        access: AffineAccess,
        reuse_dim: int,
        overflow: np.ndarray,
        geometry: CacheGeometry,
    ) -> np.ndarray:
        """Widen instance-0 victims by every start-set the window reaches."""
        period = geometry.mapping_period
        outer = access.dims[: reuse_dim + 1]
        residues = footprint_residues(outer, period)
        base_mod = np.int64(access.base % period)
        starts = ((base_mod + residues) % period) >> np.int64(geometry.offset_bits)
        origin = int(base_mod) >> geometry.offset_bits
        shifts = np.unique((starts - np.int64(origin)) % geometry.num_sets)
        union = (overflow[:, None] + shifts[None, :]) % geometry.num_sets
        return np.unique(union)

    def loop_victims(self, loop_name: str) -> List[int]:
        """Predicted victim sets of one loop, sorted."""
        return self.victim_sets_by_loop.get(
            loop_name, np.empty(0, dtype=np.int64)
        ).tolist()
