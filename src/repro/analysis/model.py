"""The immutable inputs of static analysis: a :class:`StaticModel`.

A model bundles exactly what the passes may look at — the program image
(for loop recovery), the cache geometry (for set arithmetic), the declared
affine accesses, and the workload's array objects (for padding advice).
Nothing here runs a trace; building a model from a workload touches only
its declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.descriptors import AffineAccess
from repro.cache.geometry import CacheGeometry
from repro.errors import AnalysisError
from repro.program.image import ProgramImage


def _is_array_like(value: object) -> bool:
    """Duck-typed test for Array1D/2D/3D (has a labelled allocation)."""
    allocation = getattr(value, "allocation", None)
    return allocation is not None and hasattr(allocation, "label")


@dataclass(frozen=True)
class StaticModel:
    """Everything the analysis passes are allowed to see.

    Attributes:
        workload_name: Report header, e.g. ``gemm``.
        image: The program image whose CFGs encode the loop nests.
        geometry: Cache geometry the prediction targets.
        accesses: Declared affine accesses, in declaration order.
        arrays: Array objects by allocation label (used by the padding
            pass; values are ``Array1D``/``Array2D``/``Array3D``).
    """

    workload_name: str
    image: ProgramImage
    geometry: CacheGeometry
    accesses: Tuple[AffineAccess, ...]
    arrays: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.accesses:
            raise AnalysisError(
                f"workload {self.workload_name!r} declares no affine access "
                "patterns; static prediction needs access_patterns()"
            )

    @classmethod
    def from_workload(
        cls, workload: object, geometry: Optional[CacheGeometry] = None
    ) -> "StaticModel":
        """Build a model from a workload's declarations — no trace run.

        The workload must implement ``access_patterns()`` (see
        ``TraceWorkload``); its array attributes are discovered by
        duck-typing so 1-D, 2-D and 3-D arrays all register.
        """
        patterns = getattr(workload, "access_patterns", None)
        if patterns is None:
            raise AnalysisError(
                f"{type(workload).__name__} has no access_patterns(); "
                "cannot build a static model"
            )
        accesses = tuple(patterns())
        arrays: Dict[str, object] = {}
        for value in vars(workload).values():
            if _is_array_like(value):
                arrays[str(value.allocation.label)] = value  # type: ignore[attr-defined]
        name = str(getattr(workload, "name", type(workload).__name__))
        image = workload.image  # type: ignore[attr-defined]
        return cls(
            workload_name=name,
            image=image,
            geometry=geometry or CacheGeometry(),
            accesses=accesses,
            arrays=arrays,
        )
