"""`AccessPatternAnalysis`: bind declared accesses to recovered loops.

The pass resolves each :class:`~repro.analysis.descriptors.AffineAccess`
through the program image — IP to basic block to innermost loop in the
Havlak forest — and groups accesses per loop, exactly mirroring how the
dynamic analyzer attributes PMU samples to loops.  Nothing about loop
structure is taken from the workload out of band: if the CFG does not
encode a loop around the access's IP, the access reports as unresolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.descriptors import AffineAccess
from repro.analysis.framework import AnalysisPass


@dataclass
class LoopAccessPattern:
    """All declared accesses of one loop.

    Attributes:
        loop_name: ``file:line`` of the loop header (``func@ip`` for
            anonymous code), matching the dynamic report's names.
        header_ip: Instruction address of the loop header block.
        depth: Nesting depth of the loop (1 = outermost).
        accesses: The loop's affine accesses, declaration order.
    """

    loop_name: str
    header_ip: int
    depth: int
    accesses: List[AffineAccess] = field(default_factory=list)

    @property
    def weight(self) -> int:
        """Total static access count: sum of per-access trip counts."""
        return sum(access.trip_count for access in self.accesses)

    @property
    def labels(self) -> List[str]:
        """Distinct array labels touched, in first-touch order."""
        seen: List[str] = []
        for access in self.accesses:
            if access.label not in seen:
                seen.append(access.label)
        return seen


class AccessPatternAnalysis(AnalysisPass):
    """Group the model's affine accesses by innermost enclosing loop."""

    patterns: List[LoopAccessPattern]
    by_loop: Dict[str, LoopAccessPattern]
    #: Accesses whose IP resolved to no loop (straight-line code).
    unresolved: List[AffineAccess]

    def analyze(self) -> None:
        image = self.model.image
        self.patterns = []
        self.by_loop = {}
        self.unresolved = []
        for access in self.model.accesses:
            resolved = image.resolve_ip(access.ip)
            if resolved is None:
                self.unresolved.append(access)
                continue
            function, block = resolved
            loop = image.loop_forest(function.name).innermost_loop(block.block_id)
            if loop is None:
                self.unresolved.append(access)
                continue
            name = image.loop_name(function, loop)
            pattern = self.by_loop.get(name)
            if pattern is None:
                header_ip = function.cfg.block(loop.header).start_ip
                pattern = LoopAccessPattern(
                    loop_name=name, header_ip=header_ip, depth=loop.depth
                )
                self.by_loop[name] = pattern
                self.patterns.append(pattern)
            pattern.accesses.append(access)

    def loop_weights(self) -> List[Tuple[str, int]]:
        """(loop_name, static weight) pairs, heaviest first."""
        pairs = [(pattern.loop_name, pattern.weight) for pattern in self.patterns]
        pairs.sort(key=lambda pair: pair[1], reverse=True)
        return pairs
