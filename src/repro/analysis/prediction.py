"""`ConflictPredictionAnalysis`: ranked static conflict report.

Turns the per-loop window pressures of
:class:`~repro.analysis.pressure.SetPressureAnalysis` into a report whose
shape mirrors the dynamic :class:`~repro.core.report.ConflictReport` —
same loop names, a contribution-factor analog, sets utilized, victim sets
and implicated data structures — so the two can be diffed loop by loop.
The static contribution factor is the fraction of a loop's statically
declared accesses issued by conflicting access sites, the zero-trace
analog of Equation 1's sampled cf.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.access import AccessPatternAnalysis
from repro.analysis.framework import AnalysisPass
from repro.analysis.pressure import SetPressureAnalysis


@dataclass
class StaticDataStructure:
    """One data structure implicated by the static prediction.

    Attributes:
        label: Allocation label, e.g. ``B``.
        trip_count: Static accesses the conflicting sites issue to it.
        share: Fraction of the loop's static accesses that is.
    """

    label: str
    trip_count: int
    share: float


@dataclass
class StaticLoopPrediction:
    """Static verdict for one loop — the zero-trace ``LoopReport``.

    Attributes:
        loop_name: ``file:line`` of the loop header (or ``func@ip``),
            identical to the dynamic report's naming.
        depth: Loop nesting depth.
        weight: Total static accesses the loop's sites declare.
        weight_share: This loop's fraction of the workload's accesses —
            the static analog of miss contribution (rank key).
        predicted_cf: Fraction of the loop's accesses issued by sites
            with a conflicting reuse window.
        sets_utilized: Distinct sets the loop's footprint can touch.
        victim_sets: Predicted victim sets, sorted.
        has_conflict: Whether any window conflicts.
        data_structures: Implicated structures, largest share first.
    """

    loop_name: str
    depth: int
    weight: int
    weight_share: float
    predicted_cf: float
    sets_utilized: int
    victim_sets: List[int]
    has_conflict: bool
    data_structures: List[StaticDataStructure] = field(default_factory=list)

    def describe(self) -> str:
        """One-line rendering for the text report."""
        verdict = "CONFLICT" if self.has_conflict else "ok"
        victims = str(len(self.victim_sets)) if self.victim_sets else "-"
        return (
            f"{self.loop_name:<28} {self.weight_share:>7.2%} "
            f"cf={self.predicted_cf:.3f} sets={self.sets_utilized:>3} "
            f"victims={victims:>4} {verdict}"
        )


@dataclass
class StaticConflictReport:
    """Whole-workload static prediction, ranked by access weight."""

    workload_name: str
    geometry_name: str
    loops: List[StaticLoopPrediction] = field(default_factory=list)

    def conflicting_loops(self) -> List[StaticLoopPrediction]:
        """Loops predicted to conflict."""
        return [loop for loop in self.loops if loop.has_conflict]

    @property
    def has_conflicts(self) -> bool:
        """Whether any loop is predicted to conflict."""
        return any(loop.has_conflict for loop in self.loops)

    def loop(self, loop_name: str) -> StaticLoopPrediction:
        """Look up one loop's prediction."""
        for entry in self.loops:
            if entry.loop_name == loop_name:
                return entry
        raise KeyError(f"no prediction for loop {loop_name!r}")

    def render(self) -> str:
        """Multi-line text report, ConflictReport style."""
        lines = [
            f"CCProf static prediction: {self.workload_name}",
            f"  geometry: {self.geometry_name}",
            "  trace accesses simulated: 0",
            "",
            f"  {'loop':<28} {'weight':>8} {'cf':>8} {'sets':>4} "
            f"{'victims':>8} verdict",
        ]
        for loop in self.loops:
            lines.append("  " + loop.describe())
            for structure in loop.data_structures:
                lines.append(
                    f"      data: {structure.label:<24} "
                    f"{structure.trip_count:>8} accesses ({structure.share:.1%})"
                )
            if loop.victim_sets:
                rendered = ", ".join(str(s) for s in loop.victim_sets[:12])
                if len(loop.victim_sets) > 12:
                    rendered += ", ..."
                lines.append(f"      victim sets: [{rendered}]")
        if not self.loops:
            lines.append("  (no loops with declared access patterns)")
        return "\n".join(lines)


class ConflictPredictionAnalysis(AnalysisPass):
    """Assemble the ranked :class:`StaticConflictReport`."""

    requires = (AccessPatternAnalysis, SetPressureAnalysis)

    report: StaticConflictReport

    def analyze(self) -> None:
        patterns = self.request(AccessPatternAnalysis)
        pressure = self.request(SetPressureAnalysis)
        geometry = self.model.geometry
        total_weight = sum(pattern.weight for pattern in patterns.patterns)
        loops: List[StaticLoopPrediction] = []
        for pattern in patterns.patterns:
            conflicting = pressure.conflicting_accesses.get(pattern.loop_name, [])
            conflict_weight = sum(access.trip_count for access in conflicting)
            weight = pattern.weight
            victims = pressure.loop_victims(pattern.loop_name)
            loops.append(
                StaticLoopPrediction(
                    loop_name=pattern.loop_name,
                    depth=pattern.depth,
                    weight=weight,
                    weight_share=weight / total_weight if total_weight else 0.0,
                    predicted_cf=conflict_weight / weight if weight else 0.0,
                    sets_utilized=int(
                        pressure.footprint_sets_by_loop[pattern.loop_name].size
                    ),
                    victim_sets=victims,
                    has_conflict=bool(victims),
                    data_structures=self._data_structures(conflicting, weight),
                )
            )
        loops.sort(key=lambda loop: loop.weight_share, reverse=True)
        geometry_name = (
            f"{geometry.num_sets} sets x {geometry.ways} ways, "
            f"{geometry.line_size}B lines"
        )
        self.report = StaticConflictReport(
            workload_name=self.model.workload_name,
            geometry_name=geometry_name,
            loops=loops,
        )

    @staticmethod
    def _data_structures(
        conflicting: List, weight: int
    ) -> List[StaticDataStructure]:
        by_label: Dict[str, int] = {}
        for access in conflicting:
            by_label[access.label] = by_label.get(access.label, 0) + access.trip_count
        structures = [
            StaticDataStructure(
                label=label,
                trip_count=count,
                share=count / weight if weight else 0.0,
            )
            for label, count in by_label.items()
        ]
        structures.sort(key=lambda s: s.trip_count, reverse=True)
        return structures
