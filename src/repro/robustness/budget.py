"""Sampler watchdog budgets.

A production profiler cannot assume the target terminates: runaway loops,
hung threads, and pathological traces all need a bound after which the
profiler stops observing and yields whatever partial profile it has — the
offline analyzer then reports best-effort results with a
``DataQuality.truncated`` warning instead of hanging or dying.

:class:`SamplingBudget` is the immutable configuration;
:meth:`SamplingBudget.tracker` mints a per-run :class:`BudgetTracker`
that the sampler charges as it consumes the trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SamplingError
from repro.obs.metrics import get_registry

#: How many accesses pass between deadline (clock) checks — reading the
#: clock per access would dominate the sampler's hot loop.
_DEADLINE_CHECK_STRIDE = 1024


@dataclass(frozen=True)
class SamplingBudget:
    """Limits on one profiling run.  ``None`` means unlimited.

    Attributes:
        max_accesses: Stop after this many trace records.
        max_events: Stop after this many qualifying PMU events.
        max_samples: Stop after capturing this many samples.
        deadline_seconds: Wall-clock budget for the run.
        clock: Monotonic time source (injectable for deterministic tests).
    """

    max_accesses: Optional[int] = None
    max_events: Optional[int] = None
    max_samples: Optional[int] = None
    deadline_seconds: Optional[float] = None
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def __post_init__(self) -> None:
        for name in ("max_accesses", "max_events", "max_samples"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise SamplingError(f"{name} must be >= 1, got {value}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise SamplingError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )

    @property
    def unlimited(self) -> bool:
        """True when no limit is configured (the tracker short-circuits)."""
        return (
            self.max_accesses is None
            and self.max_events is None
            and self.max_samples is None
            and self.deadline_seconds is None
        )

    def tracker(self) -> "BudgetTracker":
        """Start the clock on a fresh per-run tracker."""
        return BudgetTracker(self)


class BudgetTracker:
    """Mutable per-run state for one :class:`SamplingBudget`.

    The sampler calls :meth:`exhausted_after` once per trace record; the
    first limit hit is latched in :attr:`reason` (human-readable) and
    :attr:`limit` (the machine-readable field name, e.g. ``max_events``)
    and reported in the profile's data-quality section.

    The tracker also threads the budget through the obs layer: configured
    limits land in ``pmu.budget.<limit>`` gauges at construction, and the
    limit that stops a run increments ``pmu.budget.tripped.<limit>`` — so
    a truncated run's manifest names the budget that fired, not just a
    free-text ``truncation_reason``.
    """

    #: Configurable limits, in latch-priority order.
    LIMIT_NAMES = ("max_accesses", "max_events", "max_samples", "deadline_seconds")

    def __init__(self, budget: SamplingBudget) -> None:
        self.budget = budget
        self.reason: Optional[str] = None
        self.limit: Optional[str] = None
        self._started_at = budget.clock() if budget.deadline_seconds else 0.0
        self._accesses_until_clock_check = _DEADLINE_CHECK_STRIDE
        registry = get_registry()
        if registry.enabled:
            for name in self.LIMIT_NAMES:
                value = getattr(budget, name)
                if value is not None:
                    registry.gauge(f"pmu.budget.{name}").set(value)

    def _latch(self, limit: str, reason: str) -> str:
        """Record the first limit hit (and charge its trip counter)."""
        self.limit = limit
        self.reason = reason
        get_registry().counter(f"pmu.budget.tripped.{limit}").inc()
        return reason

    def exhausted_after(
        self, accesses: int, events: int, samples: int
    ) -> Optional[str]:
        """Check limits given the run's counters; returns the latched reason.

        Args:
            accesses: Trace records consumed so far.
            events: Qualifying PMU events seen so far.
            samples: Samples captured so far.
        """
        if self.reason is not None:
            return self.reason
        budget = self.budget
        if budget.max_accesses is not None and accesses >= budget.max_accesses:
            return self._latch(
                "max_accesses", f"access budget exhausted ({budget.max_accesses})"
            )
        if budget.max_events is not None and events >= budget.max_events:
            return self._latch(
                "max_events", f"event budget exhausted ({budget.max_events})"
            )
        if budget.max_samples is not None and samples >= budget.max_samples:
            return self._latch(
                "max_samples", f"sample budget exhausted ({budget.max_samples})"
            )
        if budget.deadline_seconds is not None:
            self._accesses_until_clock_check -= 1
            if self._accesses_until_clock_check <= 0:
                self._accesses_until_clock_check = _DEADLINE_CHECK_STRIDE
                elapsed = budget.clock() - self._started_at
                if elapsed >= budget.deadline_seconds:
                    return self._latch(
                        "deadline_seconds",
                        f"deadline exceeded ({budget.deadline_seconds}s)",
                    )
        return self.reason

    def exhausted_now(
        self, accesses: int, events: int, samples: int
    ) -> Optional[str]:
        """Batch-granularity variant of :meth:`exhausted_after`.

        Identical limits and priority order, but the deadline branch
        always consults the clock: the batched sampler calls this once per
        batch rather than once per access, so the per-access stride
        amortization would starve the deadline check.
        """
        if self.reason is not None:
            return self.reason
        budget = self.budget
        if budget.max_accesses is not None and accesses >= budget.max_accesses:
            return self._latch(
                "max_accesses", f"access budget exhausted ({budget.max_accesses})"
            )
        if budget.max_events is not None and events >= budget.max_events:
            return self._latch(
                "max_events", f"event budget exhausted ({budget.max_events})"
            )
        if budget.max_samples is not None and samples >= budget.max_samples:
            return self._latch(
                "max_samples", f"sample budget exhausted ({budget.max_samples})"
            )
        if budget.deadline_seconds is not None:
            elapsed = budget.clock() - self._started_at
            if elapsed >= budget.deadline_seconds:
                return self._latch(
                    "deadline_seconds",
                    f"deadline exceeded ({budget.deadline_seconds}s)",
                )
        return self.reason
