"""Robustness toolkit: fault injection, retry, and sampling budgets.

The paper's central claim is that conflict detection survives a *lossy*
observation channel.  This package makes the channel's loss explicit and
controllable:

- :mod:`repro.robustness.faults` — seeded, composable injectors that
  recreate real PEBS pathologies (drop, burst loss, IP skid, address
  corruption, duplication, truncation, interleave jitter) on any record
  stream.
- :mod:`repro.robustness.retry` — jittered exponential backoff for flaky
  operations such as PMU attach.
- :mod:`repro.robustness.budget` — event/deadline watchdog budgets that
  turn runaway profiling runs into partial, flagged profiles.
"""

from repro.robustness.budget import BudgetTracker, SamplingBudget
from repro.robustness.faults import (
    FAULT_NAMES,
    BitflipInjector,
    BurstDropInjector,
    DropInjector,
    DuplicateInjector,
    FaultInjector,
    FaultPipeline,
    FaultReport,
    JitterInjector,
    SkidInjector,
    TruncateInjector,
    default_pipeline,
    make_injector,
    parse_fault_specs,
)
from repro.robustness.retry import RetryPolicy, retry_with_backoff

__all__ = [
    "BitflipInjector",
    "BudgetTracker",
    "BurstDropInjector",
    "DropInjector",
    "DuplicateInjector",
    "FAULT_NAMES",
    "FaultInjector",
    "FaultPipeline",
    "FaultReport",
    "JitterInjector",
    "RetryPolicy",
    "SamplingBudget",
    "SkidInjector",
    "TruncateInjector",
    "default_pipeline",
    "make_injector",
    "parse_fault_specs",
    "retry_with_backoff",
]
