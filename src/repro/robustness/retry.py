"""Retry with jittered exponential backoff.

Real PMU attach (``perf_event_open`` + ring-buffer mmap per thread) fails
transiently all the time — the counter is taken, the target raced an exec,
the watchdog throttled the event.  libmonitor-style tooling retries with
backoff rather than aborting the whole profiled run.  This module provides
the policy object and driver used by
:class:`repro.pmu.monitor.MonitorSession` for its simulated flaky attach,
deterministic under an explicit RNG/seed so chaos tests can count sleeps.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import ReproError, RetryExhaustedError, SamplingError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff schedule.

    Delay before attempt ``n`` (1-based; the first attempt has no delay) is
    ``min(base_delay * multiplier**(n - 2), max_delay)`` scaled by a uniform
    jitter factor in ``[1 - jitter, 1 + jitter]``.

    Attributes:
        max_attempts: Total attempts, including the first.
        base_delay: Delay after the first failure (seconds).
        max_delay: Backoff ceiling (seconds).
        multiplier: Exponential growth factor.
        jitter: Fractional uniform jitter applied to every delay.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SamplingError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise SamplingError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise SamplingError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise SamplingError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay_before(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay before 1-based ``attempt`` (0.0 for the first)."""
        if attempt <= 1:
            return 0.0
        raw = self.base_delay * self.multiplier ** (attempt - 2)
        capped = min(raw, self.max_delay)
        scale = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return capped * scale


def retry_with_backoff(
    operation: Callable[[], T],
    *,
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (ReproError,),
    rng: Optional[random.Random] = None,
    seed: int = 0,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> T:
    """Call ``operation`` until it succeeds or the policy is exhausted.

    Args:
        operation: Zero-argument callable to retry.
        policy: Backoff schedule (default :class:`RetryPolicy`).
        retry_on: Exception types that trigger a retry; anything else
            propagates immediately.
        rng: Jitter RNG; built from ``seed`` when omitted.
        sleep: Sleep function (inject a no-op for simulated time).
        on_retry: Optional observer called as ``(attempt, error, delay)``
            after each failed attempt that will be retried.

    Returns:
        Whatever ``operation`` returns.

    Raises:
        RetryExhaustedError: After ``policy.max_attempts`` failures; the
            final failure is chained as ``__cause__`` and ``last_error``.
    """
    policy = policy or RetryPolicy()
    rng = rng or random.Random(seed)
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return operation()
        except retry_on as error:
            last_error = error
            if attempt < policy.max_attempts:
                delay = policy.delay_before(attempt + 1, rng)
                if on_retry is not None:
                    on_retry(attempt, error, delay)
                if delay > 0.0:
                    sleep(delay)
    raise RetryExhaustedError(
        f"operation failed after {policy.max_attempts} attempts: {last_error}",
        attempts=policy.max_attempts,
        last_error=last_error,
    ) from last_error
