"""Fault injectors modelling real PMU observation-channel pathologies.

CCProf's inference is built on a lossy channel: PEBS drops records under
buffer pressure, attributes samples to skidded instruction pointers, and
occasionally delivers corrupt or duplicated records (the measurement-noise
problems catalogued in the eviction-set and live-cache-inspection
literature).  The simulated pipeline is perfectly clean, so this module
re-introduces the pathologies on purpose — as composable, seeded wrappers
over any record stream whose elements are NamedTuples with ``ip`` and
``address`` fields (both :class:`~repro.trace.record.MemoryAccess` and
:class:`~repro.pmu.sampler.AddressSample` qualify).

Injectors are deterministic given the pipeline seed, so chaos tests can
assert exact degradation bounds.  The CLI exposes them via
``--inject drop:0.2,skid:1``; :func:`parse_fault_specs` defines the
grammar (``name[:param[:param]]``, comma-separated).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.errors import SamplingError


@dataclass
class FaultReport:
    """What one pipeline application did to a record stream.

    Attributes:
        injected: Fault count per injector name (e.g. ``{"drop": 41}``).
        records_in: Stream length before injection.
        records_out: Stream length after injection.
    """

    injected: Dict[str, int] = field(default_factory=dict)
    records_in: int = 0
    records_out: int = 0

    @property
    def total_injected(self) -> int:
        """Sum of faults across all injectors."""
        return sum(self.injected.values())

    def describe(self) -> str:
        """One-line rendering for CLI output."""
        if not self.injected:
            return "no faults injected"
        parts = ", ".join(
            f"{name}={count}" for name, count in self.injected.items()
        )
        return (
            f"{self.records_in} records in -> {self.records_out} out ({parts})"
        )


class FaultInjector(ABC):
    """One fault class, applied to a whole record stream.

    Subclasses set :attr:`name` (the spec keyword) and implement
    :meth:`apply`, returning the faulted stream plus the number of faults
    actually injected.
    """

    name: str = "fault"

    @abstractmethod
    def apply(
        self, records: Sequence, rng: random.Random
    ) -> Tuple[List, int]:
        """Return ``(faulted records, faults injected)``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}()"


class DropInjector(FaultInjector):
    """Independent random record loss — PEBS buffer overflow steady state.

    Args:
        probability: Per-record drop probability in ``[0, 1]``.
    """

    name = "drop"

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise SamplingError(
                f"drop probability must be in [0, 1], got {probability}"
            )
        self.probability = probability

    def apply(self, records, rng):
        kept: List = []
        dropped = 0
        for record in records:
            if rng.random() < self.probability:
                dropped += 1
            else:
                kept.append(record)
        return kept, dropped


class BurstDropInjector(FaultInjector):
    """Bursty record loss — a full PEBS buffer discards a contiguous run.

    Args:
        probability: Per-record probability of *entering* a drop burst.
        burst: Records lost per burst.
    """

    name = "burst"

    def __init__(self, probability: float, burst: int = 32) -> None:
        if not 0.0 <= probability <= 1.0:
            raise SamplingError(
                f"burst probability must be in [0, 1], got {probability}"
            )
        if burst < 1:
            raise SamplingError(f"burst length must be >= 1, got {burst}")
        self.probability = probability
        self.burst = burst

    def apply(self, records, rng):
        kept: List = []
        dropped = 0
        remaining_burst = 0
        for record in records:
            if remaining_burst > 0:
                remaining_burst -= 1
                dropped += 1
                continue
            if rng.random() < self.probability:
                remaining_burst = self.burst - 1
                dropped += 1
                continue
            kept.append(record)
        return kept, dropped


class SkidInjector(FaultInjector):
    """IP skid — the sample lands on a later instruction than the miss.

    Every record's ``ip`` moves forward by a uniform draw in
    ``[0, max_skid]``; records that actually moved count as faults.
    Skidded IPs may fall outside any known statement, in which case the
    symbolizer attributes them to its ``<unknown>`` sentinel — exactly the
    misattribution real PEBS causes.

    Args:
        max_skid: Maximum forward IP displacement (in IP units).
    """

    name = "skid"

    def __init__(self, max_skid: int) -> None:
        if max_skid < 0:
            raise SamplingError(f"max skid must be >= 0, got {max_skid}")
        self.max_skid = int(max_skid)

    def apply(self, records, rng):
        out: List = []
        skidded = 0
        for record in records:
            displacement = rng.randint(0, self.max_skid) if self.max_skid else 0
            if displacement:
                record = record._replace(ip=record.ip + displacement)
                skidded += 1
            out.append(record)
        return out, skidded


class BitflipInjector(FaultInjector):
    """Address corruption — a random low bit of the address flips.

    Args:
        probability: Per-record corruption probability.
        bits: Width of the window (from bit 0) in which a bit may flip.
    """

    name = "bitflip"

    def __init__(self, probability: float, bits: int = 32) -> None:
        if not 0.0 <= probability <= 1.0:
            raise SamplingError(
                f"bitflip probability must be in [0, 1], got {probability}"
            )
        if bits < 1:
            raise SamplingError(f"bitflip width must be >= 1, got {bits}")
        self.probability = probability
        self.bits = int(bits)

    def apply(self, records, rng):
        out: List = []
        corrupted = 0
        for record in records:
            if rng.random() < self.probability:
                bit = rng.randrange(self.bits)
                record = record._replace(address=record.address ^ (1 << bit))
                corrupted += 1
            out.append(record)
        return out, corrupted


class DuplicateInjector(FaultInjector):
    """Record duplication — the PMU delivers the same sample twice.

    Args:
        probability: Per-record probability of an immediate duplicate.
    """

    name = "dup"

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise SamplingError(
                f"dup probability must be in [0, 1], got {probability}"
            )
        self.probability = probability

    def apply(self, records, rng):
        out: List = []
        duplicated = 0
        for record in records:
            out.append(record)
            if rng.random() < self.probability:
                out.append(record)
                duplicated += 1
        return out, duplicated


class TruncateInjector(FaultInjector):
    """Stream truncation — the run died early; only a prefix survives.

    Args:
        keep_fraction: Fraction of the stream (from the start) retained.
    """

    name = "truncate"

    def __init__(self, keep_fraction: float) -> None:
        if not 0.0 < keep_fraction <= 1.0:
            raise SamplingError(
                f"truncate keep fraction must be in (0, 1], got {keep_fraction}"
            )
        self.keep_fraction = keep_fraction

    def apply(self, records, rng):
        records = list(records)
        keep = int(len(records) * self.keep_fraction)
        return records[:keep], len(records) - keep


class JitterInjector(FaultInjector):
    """Thread-interleave jitter — records reorder within a small window.

    Models per-thread PEBS buffers draining out of order: each consecutive
    window of ``window`` records is shuffled; records that ended up away
    from their original slot count as faults.

    Args:
        window: Reorder window size (records).
    """

    name = "jitter"

    def __init__(self, window: int) -> None:
        if window < 2:
            raise SamplingError(f"jitter window must be >= 2, got {window}")
        self.window = int(window)

    def apply(self, records, rng):
        records = list(records)
        out: List = []
        displaced = 0
        for start in range(0, len(records), self.window):
            chunk = records[start : start + self.window]
            shuffled = chunk[:]
            rng.shuffle(shuffled)
            displaced += sum(
                1 for a, b in zip(chunk, shuffled) if a is not b
            )
            out.extend(shuffled)
        return out, displaced


class FaultPipeline:
    """A seeded, ordered composition of fault injectors.

    Applying the pipeline threads the stream through every injector in
    order and records a :class:`FaultReport` (``pipeline.last_report``)
    for diagnostics.  Deterministic given ``seed``.

    Args:
        injectors: Injectors, applied first-to-last.
        seed: RNG seed for all stochastic injectors.
    """

    def __init__(self, injectors: Iterable[FaultInjector], seed: int = 0) -> None:
        self.injectors: List[FaultInjector] = list(injectors)
        self.seed = seed
        self.last_report = FaultReport()

    def __bool__(self) -> bool:
        return bool(self.injectors)

    def apply(self, records: Iterable) -> List:
        """Run the stream through the pipeline; returns the faulted list."""
        rng = random.Random(self.seed)
        current = list(records)
        report = FaultReport(records_in=len(current))
        for injector in self.injectors:
            current, injected = injector.apply(current, rng)
            report.injected[injector.name] = (
                report.injected.get(injector.name, 0) + injected
            )
        report.records_out = len(current)
        self.last_report = report
        return current

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPipeline":
        """Build a pipeline from a CLI spec, e.g. ``drop:0.2,skid:1``."""
        return cls(parse_fault_specs(spec), seed=seed)

    def __repr__(self) -> str:
        inner = ", ".join(injector.name for injector in self.injectors)
        return f"FaultPipeline([{inner}], seed={self.seed})"


#: Spec keyword -> (factory, default-severity args used when no parameter
#: is given, e.g. plain ``drop``).  Factories take float parameters parsed
#: from the spec string.
_FAULT_FACTORIES: Dict[str, Tuple[Callable[..., FaultInjector], Tuple[float, ...]]] = {
    "drop": (lambda p=0.2: DropInjector(p), (0.2,)),
    "burst": (lambda p=0.02, burst=32: BurstDropInjector(p, int(burst)), (0.02, 32)),
    "skid": (lambda n=1: SkidInjector(int(n)), (1,)),
    "bitflip": (lambda p=0.01, bits=32: BitflipInjector(p, int(bits)), (0.01, 32)),
    "dup": (lambda p=0.05: DuplicateInjector(p), (0.05,)),
    "truncate": (lambda keep=0.8: TruncateInjector(keep), (0.8,)),
    "jitter": (lambda window=8: JitterInjector(int(window)), (8,)),
}

#: Public list of recognized fault keywords (CLI help, tests).
FAULT_NAMES = tuple(sorted(_FAULT_FACTORIES))


def make_injector(name: str, *params: float) -> FaultInjector:
    """Instantiate one injector by keyword with positional parameters."""
    try:
        factory, _defaults = _FAULT_FACTORIES[name]
    except KeyError:
        known = ", ".join(FAULT_NAMES)
        raise SamplingError(
            f"unknown fault {name!r}; known faults: {known}"
        ) from None
    try:
        return factory(*params)
    except TypeError as exc:
        raise SamplingError(f"bad parameters for fault {name!r}: {exc}") from exc


def parse_fault_specs(spec: str) -> List[FaultInjector]:
    """Parse a comma-separated fault spec into injectors.

    Grammar: ``name[:param[:param]]`` per entry; parameters are floats.
    Example: ``drop:0.2,skid:1,bitflip:0.01``.
    """
    injectors: List[FaultInjector] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, rest = entry.partition(":")
        name = name.strip().lower()
        params: List[float] = []
        if rest:
            for token in rest.split(":"):
                try:
                    params.append(float(token))
                except ValueError:
                    raise SamplingError(
                        f"bad fault parameter {token!r} in {entry!r}"
                    ) from None
        injectors.append(make_injector(name, *params))
    if not injectors:
        raise SamplingError(f"empty fault spec {spec!r}")
    return injectors


def default_pipeline(name: str, seed: int = 0) -> FaultPipeline:
    """A single-fault pipeline at the fault's default severity."""
    return FaultPipeline([make_injector(name)], seed=seed)
