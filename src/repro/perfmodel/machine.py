"""Machine specifications for the paper's two evaluation platforms.

Paper §5: Intel Broadwell Xeon E7-4830v4 (2.00 GHz, 14 cores x 2 SMT,
35 MB LLC) and Intel Skylake Xeon E3-1240v5 (3.50 GHz, 4 cores x 2 SMT,
8 MB LLC); both with 32 KB L1 and 256 KB L2 per core.  Latencies are the
publicly documented load-to-use figures for those microarchitectures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import CacheHierarchy


@dataclass(frozen=True)
class MachineSpec:
    """One evaluation platform.

    Attributes:
        name: Platform name as used in Table 3 headers.
        frequency_ghz: Core clock.
        cores: Physical cores per socket.
        smt: Hardware threads per core.
        l1_latency: L1 hit latency (cycles).
        l2_latency: L2 hit latency (cycles).
        llc_latency: LLC hit latency (cycles).
        memory_latency: DRAM access latency (cycles).
    """

    name: str
    frequency_ghz: float
    cores: int
    smt: int
    l1_latency: int
    l2_latency: int
    llc_latency: int
    memory_latency: int

    @property
    def threads(self) -> int:
        """Hardware threads the paper runs with (all of them)."""
        return self.cores * self.smt

    def hierarchy(self) -> CacheHierarchy:
        """A fresh per-core cache hierarchy for this machine."""
        if self.name.lower().startswith("broadwell"):
            return CacheHierarchy.broadwell()
        return CacheHierarchy.skylake()

    def level_latencies(self) -> tuple:
        """(L1, L2, LLC, memory) latencies in cycles."""
        return (self.l1_latency, self.l2_latency, self.llc_latency, self.memory_latency)


#: Intel Broadwell Xeon E7-4830v4 (paper §5).
BROADWELL = MachineSpec(
    name="Broadwell E7-4830v4",
    frequency_ghz=2.0,
    cores=14,
    smt=2,
    l1_latency=4,
    l2_latency=12,
    llc_latency=50,
    memory_latency=220,
)

#: Intel Skylake Xeon E3-1240v5 (paper §5).
SKYLAKE = MachineSpec(
    name="Skylake E3-1240v5",
    frequency_ghz=3.5,
    cores=4,
    smt=2,
    l1_latency=4,
    l2_latency=12,
    llc_latency=42,
    memory_latency=190,
)
