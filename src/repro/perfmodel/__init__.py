"""Analytical performance model.

Table 3 of the paper reports wall-clock speedups of the padded kernels on
real Broadwell and Skylake machines.  No such machines are measurable from
here, so speedups are *modelled*: a simple additive memory-cycle model
converts the per-level miss counts of a hierarchy simulation into estimated
cycles, and speedup is the ratio of the original to the optimized estimate.
This is the standard first-order model (AMAT x accesses) and captures the
paper's mechanism — padding pays exactly in proportion to the misses it
removes, weighted by each level's latency.

- :mod:`repro.perfmodel.machine` — Broadwell / Skylake machine specs.
- :mod:`repro.perfmodel.timing` — the cycle estimator and speedup helper.
"""

from repro.perfmodel.machine import BROADWELL, SKYLAKE, MachineSpec
from repro.perfmodel.timing import CycleEstimate, estimate_cycles, speedup

__all__ = [
    "MachineSpec",
    "BROADWELL",
    "SKYLAKE",
    "CycleEstimate",
    "estimate_cycles",
    "speedup",
]
