"""Cycle estimation and speedup from hierarchy simulation results.

The additive memory model: every access pays the L1 hit latency; every L1
miss additionally pays the L2 latency; every L2 miss the LLC latency; every
LLC miss the DRAM latency.  A fixed per-access compute cost models the
non-memory work of the kernel so estimated speedups stay bounded the way
real kernels' do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import HierarchyResult
from repro.errors import AnalysisError
from repro.perfmodel.machine import MachineSpec

#: Non-memory cycles charged per access (ALU work overlapping the L1 hit).
DEFAULT_COMPUTE_CYCLES = 1.0


@dataclass(frozen=True)
class CycleEstimate:
    """Decomposed cycle estimate for one simulated run."""

    compute_cycles: float
    l1_cycles: float
    l2_cycles: float
    llc_cycles: float
    memory_cycles: float

    @property
    def total(self) -> float:
        """Total estimated cycles."""
        return (
            self.compute_cycles
            + self.l1_cycles
            + self.l2_cycles
            + self.llc_cycles
            + self.memory_cycles
        )

    @property
    def memory_bound_fraction(self) -> float:
        """Share of cycles spent below L1 — how memory-bound the kernel is."""
        below_l1 = self.l2_cycles + self.llc_cycles + self.memory_cycles
        return below_l1 / self.total if self.total else 0.0


def estimate_cycles(
    result: HierarchyResult,
    machine: MachineSpec,
    compute_cycles_per_access: float = DEFAULT_COMPUTE_CYCLES,
) -> CycleEstimate:
    """Convert per-level miss counts into estimated cycles.

    Args:
        result: Hierarchy simulation result with levels L1, L2, LLC.
        machine: Latency source.
        compute_cycles_per_access: Overlapped non-memory work per access.
    """
    try:
        l1 = result.level("L1")
        l2 = result.level("L2")
        llc = result.level("LLC")
    except KeyError as exc:
        raise AnalysisError(f"hierarchy result missing a level: {exc}") from exc
    l1_lat, l2_lat, llc_lat, mem_lat = machine.level_latencies()
    return CycleEstimate(
        compute_cycles=compute_cycles_per_access * l1.accesses,
        l1_cycles=float(l1_lat * l1.accesses),
        l2_cycles=float(l2_lat * l1.misses),
        llc_cycles=float(llc_lat * l2.misses),
        memory_cycles=float(mem_lat * llc.misses),
    )


def speedup(
    before: HierarchyResult,
    after: HierarchyResult,
    machine: MachineSpec,
    compute_cycles_per_access: float = DEFAULT_COMPUTE_CYCLES,
) -> float:
    """Estimated speedup of ``after`` over ``before`` on ``machine``.

    This is the Table 3 quantity: >1 means the optimization helps.
    """
    cycles_before = estimate_cycles(before, machine, compute_cycles_per_access).total
    cycles_after = estimate_cycles(after, machine, compute_cycles_per_access).total
    if cycles_after <= 0:
        raise AnalysisError("optimized run has non-positive estimated cycles")
    return cycles_before / cycles_after
