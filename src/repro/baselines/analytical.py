"""A cache-miss-equations-style analytical conflict model.

The analytical family [Ghosh/Martonosi/Malik's Cache Miss Equations;
Agarwal's analytical cache model] predicts conflicts statically from loop
bounds and array layout, with no execution.  The paper's critique (§7.1):
"their utility is limited due to complex algorithms and geometric
degeneracies" — they are exact on the affine patterns they cover and
helpless elsewhere.

This module implements the model for the pattern every case study in the
paper reduces to — a column walk over a row-major 2-D array:

    for i in rows: touch A[i][c]          # stride = pitch bytes

The walk's addresses modulo the cache mapping period are an arithmetic
progression with step ``pitch``; the number of distinct residues (and hence
sets) is ``period / gcd(pitch, period)``.  Conflicts occur exactly when
more lines fold per set than the associativity holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.errors import AnalysisError


@dataclass(frozen=True)
class AnalyticalPrediction:
    """Static conflict prediction for one column walk.

    Attributes:
        sets_used: Distinct sets the walk visits.
        lines_per_set: Lines folded onto each visited set (ceiling).
        predicted_conflict: Whether lines-per-set exceeds associativity.
        steady_state_miss_ratio: Predicted per-reference miss ratio of the
            walk once warm (1.0 under full thrash, 0 when resident).
    """

    sets_used: int
    lines_per_set: float
    predicted_conflict: bool
    steady_state_miss_ratio: float


def predict_column_walk_conflict(
    pitch: int,
    rows: int,
    geometry: CacheGeometry = CacheGeometry(),
) -> AnalyticalPrediction:
    """Predict conflicts for a column walk of ``rows`` rows at ``pitch``.

    Args:
        pitch: Byte distance between consecutive touches (the array's row
            pitch).
        rows: Number of rows the walk traverses per sweep.
        geometry: Target cache.
    """
    if pitch <= 0 or rows <= 0:
        raise AnalysisError("pitch and rows must be positive")
    period = geometry.mapping_period
    step = pitch % period
    if step == 0:
        distinct_residues = 1
    else:
        distinct_residues = period // math.gcd(step, period)
    # Residues land on distinct sets only at line granularity.
    residue_spacing = period // distinct_residues
    if residue_spacing >= geometry.line_size:
        sets_used = distinct_residues
    else:
        sets_used = geometry.num_sets
    sets_used = min(sets_used, rows, geometry.num_sets)
    lines_per_set = rows / sets_used
    predicted_conflict = lines_per_set > geometry.ways
    if predicted_conflict:
        # LRU under cyclic over-subscription misses every reference.
        miss_ratio = 1.0
    else:
        # Resident after warm-up; misses only on line boundaries when the
        # walk is denser than a line (not the case for pitch >= line).
        miss_ratio = 0.0
    return AnalyticalPrediction(
        sets_used=sets_used,
        lines_per_set=lines_per_set,
        predicted_conflict=predicted_conflict,
        steady_state_miss_ratio=miss_ratio,
    )


def minimal_conflict_free_pad(
    cols: int,
    elem_size: int,
    rows: int,
    geometry: CacheGeometry = CacheGeometry(),
    alignment: int = 8,
) -> int:
    """Smallest pad whose padded pitch the model predicts conflict-free.

    The analytical counterpart of the measurement-driven advisor; the two
    agree on affine walks (tested), which cross-validates both.
    """
    if alignment <= 0:
        raise AnalysisError(f"alignment must be positive: {alignment}")
    base_pitch = cols * elem_size
    for pad in range(0, geometry.mapping_period + 1, alignment):
        prediction = predict_column_walk_conflict(base_pitch + pad, rows, geometry)
        if not prediction.predicted_conflict:
            return pad
    raise AnalysisError(
        f"no pad within one mapping period de-conflicts pitch {base_pitch}"
    )
