"""A DProf-style spatial conflict detector.

DProf [Pesterev, Zeldovich & Morris, EuroSys 2010] locates cache problems
from PMU samples using data-profile heuristics.  For the conflict question
the operative signal is *spatial*: tally the sampled misses per cache set
over the whole run and flag sets whose totals stand far above the mean.

The paper's critique (§7.1): "DProf assumes that the workload is uniform
throughout the runtime, whereas applications with the dynamic access
pattern are common."  A column walk that cycles victim sets (ADI, FFT,
Kripke) produces a *balanced* per-set total — every set gets its turn — so
the spatial histogram looks healthy even while, at every instant, a handful
of sets is being thrashed.  CCProf's RCD keeps the temporal ordering and
catches exactly these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cache.geometry import CacheGeometry
from repro.errors import AnalysisError
from repro.pmu.sampler import AddressSample
from repro.stats.distributions import gini_coefficient


@dataclass(frozen=True)
class DprofVerdict:
    """Outcome of the spatial-imbalance analysis.

    Attributes:
        has_conflict: Whether the detector flags the context.
        hot_sets: Sets whose miss totals exceed the threshold multiple of
            the mean.
        imbalance: Max-over-mean ratio of per-set totals.
        gini: Gini coefficient of the per-set totals.
    """

    has_conflict: bool
    hot_sets: List[int]
    imbalance: float
    gini: float


class DprofDetector:
    """Spatial per-set miss-imbalance detection over PMU samples.

    Args:
        geometry: Cache geometry for set attribution.
        hot_multiple: A set is "hot" when its total exceeds this multiple
            of the mean per-set total.
        min_samples: Below this many samples the detector abstains
            (returns no conflict).
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        hot_multiple: float = 4.0,
        min_samples: int = 32,
    ) -> None:
        if hot_multiple <= 1.0:
            raise AnalysisError(f"hot multiple must exceed 1: {hot_multiple}")
        self.geometry = geometry
        self.hot_multiple = hot_multiple
        self.min_samples = min_samples

    def analyze(self, samples: Sequence[AddressSample]) -> DprofVerdict:
        """Run the spatial analysis over one context's samples."""
        counts = [0] * self.geometry.num_sets
        for sample in samples:
            counts[self.geometry.set_index(sample.address)] += 1
        total = sum(counts)
        if total < self.min_samples:
            return DprofVerdict(False, [], 1.0, 0.0)
        mean = total / len(counts)
        hot_sets = [
            set_index
            for set_index, count in enumerate(counts)
            if count > self.hot_multiple * mean
        ]
        imbalance = max(counts) / mean
        return DprofVerdict(
            has_conflict=bool(hot_sets),
            hot_sets=hot_sets,
            imbalance=imbalance,
            gini=gini_coefficient(counts),
        )
