"""Comparison baselines from the paper's related work (§7.1).

The paper positions CCProf against three families of conflict detectors;
each is implemented here so the comparison can actually be run:

- :mod:`repro.baselines.dprof` — a DProf-style detector [Pesterev et al.]:
  PMU sampling plus *spatial* per-set miss-count imbalance heuristics.  It
  assumes a uniform workload, so temporally moving conflicts (whose per-set
  totals balance out over the run) escape it — the limitation the paper
  calls out and RCD fixes.
- :mod:`repro.baselines.mst` — the hardware miss-classification table
  [Collins & Tullsen]: remember the last evicted tag per set; a miss whose
  tag matches it is classified conflict.  Needs custom hardware in reality;
  runs on the simulator here.
- :mod:`repro.baselines.analytical` — a cache-miss-equations-style static
  model for affine column walks: predicts conflicts from (pitch, element
  size, geometry) alone, no execution needed — precise on the patterns it
  covers and silent on everything else.
"""

from repro.baselines.dprof import DprofDetector, DprofVerdict
from repro.baselines.mst import MissClassificationTable, MstCounts
from repro.baselines.analytical import (
    AnalyticalPrediction,
    predict_column_walk_conflict,
)

__all__ = [
    "DprofDetector",
    "DprofVerdict",
    "MissClassificationTable",
    "MstCounts",
    "AnalyticalPrediction",
    "predict_column_walk_conflict",
]
