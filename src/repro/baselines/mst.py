"""The hardware miss-classification table (MST).

Collins & Tullsen [MICRO 1999] classify misses in hardware: each cache set
remembers the tag of the line it most recently evicted; a subsequent miss
on that set whose tag matches the remembered one is a conflict miss (the
line would still be resident with more associativity).  The paper (§7.1)
notes this "relies on victim buffer that can be used to classify a subset
of conflict misses" and exists only in processor simulators — which is what
we are, so it runs here as a baseline.

The single-entry memory bounds its recall: when k > 1 lines rotate through
a set, the evicted-tag register is overwritten before the re-reference
arrives, and the conflict is misclassified.  The comparison bench
quantifies that against the full three-C ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.trace.record import MemoryAccess


@dataclass
class MstCounts:
    """Tallies from one MST run."""

    hits: int = 0
    conflict_misses: int = 0
    other_misses: int = 0

    @property
    def misses(self) -> int:
        """All misses."""
        return self.conflict_misses + self.other_misses

    @property
    def conflict_fraction(self) -> float:
        """Conflicts over all misses."""
        return self.conflict_misses / self.misses if self.misses else 0.0


class MissClassificationTable:
    """A set-associative cache with a per-set last-evicted-tag register."""

    def __init__(self, geometry: CacheGeometry = CacheGeometry(), entries: int = 1) -> None:
        self.geometry = geometry
        self.cache = SetAssociativeCache(geometry)
        self.entries = max(1, entries)
        # Per-set FIFO of recently evicted tags (hardware MST has 1 entry;
        # `entries` generalizes it toward a victim buffer).
        self._evicted: List[List[int]] = [[] for _ in range(geometry.num_sets)]
        self.counts = MstCounts()

    def access(self, address: int, ip: int = 0) -> Optional[bool]:
        """Reference an address.

        Returns:
            None on a hit; True when the miss is classified conflict;
            False otherwise.
        """
        result = self.cache.access(address, ip)
        if result.hit:
            self.counts.hits += 1
            return None
        table = self._evicted[result.set_index]
        is_conflict = result.tag in table
        if is_conflict:
            self.counts.conflict_misses += 1
            table.remove(result.tag)
        else:
            self.counts.other_misses += 1
        if result.evicted_tag is not None:
            table.append(result.evicted_tag)
            if len(table) > self.entries:
                table.pop(0)
        return is_conflict

    def run_trace(self, stream: Iterable[MemoryAccess]) -> MstCounts:
        """Classify a full trace; returns the tallies."""
        for access in stream:
            geometry = self.geometry
            spanned = geometry.lines_spanned(access.address, access.size)
            if spanned == 1:
                self.access(access.address, access.ip)
            else:
                base = geometry.line_address(access.address)
                for index in range(spanned):
                    self.access(base + index * geometry.line_size, access.ip)
        return self.counts
