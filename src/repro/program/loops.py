"""Loop detection: natural loops and the Havlak loop-nesting forest.

Two complementary analyses:

- :func:`find_natural_loops` — the textbook back-edge/dominator method;
  merges natural loops sharing a header.  Requires reducible flow for
  completeness.
- :func:`havlak_loops` — Havlak's interval analysis ("Nesting of reducible
  and irreducible loops", TOPLAS 1997), the algorithm the paper's offline
  analyzer cites.  Builds the full loop-nesting forest with union-find and
  handles irreducible regions, tagging them as such.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.program.cfg import ControlFlowGraph
from repro.program.dominators import DominatorTree, compute_dominators


@dataclass
class Loop:
    """One loop in the nesting forest.

    Attributes:
        header: Block id of the loop header.
        body: Ids of all blocks in the loop, header included.
        parent: Enclosing loop, or None for outermost loops.
        children: Loops nested directly inside this one.
        is_irreducible: True when the region has multiple entries.
    """

    header: int
    body: Set[int] = field(default_factory=set)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)
    is_irreducible: bool = False

    def __post_init__(self) -> None:
        self.body.add(self.header)

    @property
    def depth(self) -> int:
        """Nesting depth; 1 for outermost loops."""
        depth = 1
        ancestor = self.parent
        while ancestor is not None:
            depth += 1
            ancestor = ancestor.parent
        return depth

    @property
    def is_innermost(self) -> bool:
        """True when no loop nests inside this one."""
        return not self.children

    def contains_block(self, block_id: int) -> bool:
        """Whether ``block_id`` belongs to this loop (incl. inner loops)."""
        return block_id in self.body

    def __repr__(self) -> str:
        kind = "irreducible " if self.is_irreducible else ""
        return f"Loop({kind}header={self.header}, blocks={len(self.body)}, depth={self.depth})"


@dataclass
class LoopNestingForest:
    """All loops of one CFG, with innermost-loop lookup by block."""

    loops: List[Loop]

    def __post_init__(self) -> None:
        self._innermost: Dict[int, Loop] = {}
        # Deeper loops overwrite shallower ones so each block maps to its
        # innermost enclosing loop.
        for loop in sorted(self.loops, key=lambda l: l.depth):
            for block_id in loop.body:
                self._innermost[block_id] = loop

    @property
    def roots(self) -> List[Loop]:
        """Outermost loops."""
        return [loop for loop in self.loops if loop.parent is None]

    def innermost_loop(self, block_id: int) -> Optional[Loop]:
        """The innermost loop containing ``block_id``, or None."""
        return self._innermost.get(block_id)

    def loop_with_header(self, header: int) -> Optional[Loop]:
        """The loop headed at ``header``, or None."""
        for loop in self.loops:
            if loop.header == header:
                return loop
        return None

    def max_depth(self) -> int:
        """Deepest nesting level (0 when loop-free)."""
        return max((loop.depth for loop in self.loops), default=0)

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self) -> Iterator[Loop]:
        return iter(self.loops)


def find_natural_loops(
    cfg: ControlFlowGraph, domtree: Optional[DominatorTree] = None
) -> LoopNestingForest:
    """Detect natural loops via back edges; merge loops sharing a header.

    A back edge is ``t -> h`` with ``h`` dominating ``t``; the natural loop
    is ``h`` plus all blocks reaching ``t`` without passing through ``h``.
    Nesting is inferred by body inclusion.
    """
    if domtree is None:
        domtree = compute_dominators(cfg)
    reachable = cfg.reachable_blocks()
    bodies: Dict[int, Set[int]] = {}
    for tail in reachable:
        for header in cfg.successors(tail):
            if header in reachable and domtree.dominates(header, tail):
                body = bodies.setdefault(header, {header})
                worklist = [tail]
                while worklist:
                    node = worklist.pop()
                    if node in body:
                        continue
                    body.add(node)
                    worklist.extend(
                        pred for pred in cfg.predecessors(node) if pred in reachable
                    )
    loops = [Loop(header=header, body=body) for header, body in bodies.items()]
    _infer_nesting_by_inclusion(loops)
    return LoopNestingForest(loops=loops)


def _infer_nesting_by_inclusion(loops: List[Loop]) -> None:
    """Assign parent/children by smallest strictly-containing body."""
    by_size = sorted(loops, key=lambda loop: len(loop.body))
    for index, inner in enumerate(by_size):
        for outer in by_size[index + 1 :]:
            if inner.header in outer.body and inner.body <= outer.body and inner is not outer:
                inner.parent = outer
                outer.children.append(inner)
                break


class _UnionFind:
    """Union-find with path compression for Havlak's loop collapsing."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, node: int) -> int:
        root = node
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[node] != root:
            self.parent[node], node = root, self.parent[node]
        return root

    def union(self, child: int, root: int) -> None:
        self.parent[self.find(child)] = self.find(root)


def havlak_loops(cfg: ControlFlowGraph) -> LoopNestingForest:
    """Havlak interval analysis: the complete loop-nesting forest.

    Processes headers in reverse DFS-preorder; collapses discovered inner
    loops with union-find; detects irreducible regions (an entering edge
    from outside the header's DFS subtree).
    """
    preorder, number, last = _dfs_with_extents(cfg)
    count = len(preorder)
    if count == 0:
        return LoopNestingForest(loops=[])

    def is_ancestor(w: int, u: int) -> bool:
        return w <= u <= last[w]

    # Edges, translated to preorder numbers.
    back_preds: List[List[int]] = [[] for _ in range(count)]
    non_back_preds: List[List[int]] = [[] for _ in range(count)]
    for block_id in preorder:
        w = number[block_id]
        for pred in cfg.predecessors(block_id):
            if pred not in number:
                continue  # unreachable predecessor
            v = number[pred]
            if is_ancestor(w, v):
                back_preds[w].append(v)
            else:
                non_back_preds[w].append(v)

    uf = _UnionFind(count)
    loop_of: Dict[int, Loop] = {}  # header preorder number -> Loop
    loops: List[Loop] = []

    for w in range(count - 1, -1, -1):
        if not back_preds[w]:
            continue
        body_numbers: Set[int] = set()
        irreducible = False
        worklist: List[int] = []
        for v in back_preds[w]:
            if v != w:
                root = uf.find(v)
                if root not in body_numbers and root != w:
                    body_numbers.add(root)
                    worklist.append(root)
        while worklist:
            x = worklist.pop()
            for y in non_back_preds[x]:
                y_root = uf.find(y)
                if not is_ancestor(w, y_root):
                    # An edge enters the region from outside w's subtree:
                    # multiple-entry (irreducible) region.
                    irreducible = True
                elif y_root != w and y_root not in body_numbers:
                    body_numbers.add(y_root)
                    worklist.append(y_root)

        header_id = preorder[w]
        loop = Loop(header=header_id, is_irreducible=irreducible)
        for x in body_numbers:
            uf.union(x, w)
            inner = loop_of.get(x)
            if inner is not None and inner.parent is None:
                inner.parent = loop
                loop.children.append(inner)
            member_id = preorder[x]
            if inner is not None:
                loop.body |= inner.body
            else:
                loop.body.add(member_id)
        loop_of[w] = loop
        loops.append(loop)

    # Propagate bodies upward so outer loops contain all inner blocks.
    for loop in loops:
        ancestor = loop.parent
        while ancestor is not None:
            ancestor.body |= loop.body
            ancestor = ancestor.parent

    return LoopNestingForest(loops=loops)


def _dfs_with_extents(cfg: ControlFlowGraph):
    """One DFS computing preorder, numbering, and subtree extents together.

    Returns:
        (preorder list, block id -> preorder number, last) where
        ``last[w]`` is the highest preorder number in w's DFS subtree, so
        ``u in subtree(w)  iff  number[w] <= number[u] <= last[w]``.
        DFS preorder numbers a subtree contiguously, so when a node
        finishes, its extent is simply the latest number assigned.
    """
    if cfg.entry not in cfg:
        return [], {}, []
    preorder: List[int] = [cfg.entry]
    number: Dict[int, int] = {cfg.entry: 0}
    last: List[int] = [0]
    stack = [(cfg.entry, iter(cfg.successors(cfg.entry)))]
    while stack:
        node, successor_iter = stack[-1]
        advanced = False
        for successor in successor_iter:
            if successor not in number:
                number[successor] = len(preorder)
                preorder.append(successor)
                last.append(number[successor])
                stack.append((successor, iter(cfg.successors(successor))))
                advanced = True
                break
        if not advanced:
            last[number[node]] = len(preorder) - 1
            stack.pop()
    return preorder, number, last
