"""Dominator analysis.

Implements the iterative dominator algorithm of Cooper, Harvey & Kennedy
("A Simple, Fast Dominance Algorithm"), which runs in near-linear time on
reducible CFGs and is the standard choice for loop detection: a back edge
``t -> h`` exists exactly when ``h`` dominates ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ProgramImageError
from repro.program.cfg import ControlFlowGraph


@dataclass
class DominatorTree:
    """Immediate-dominator relation for a CFG.

    Attributes:
        idom: Immediate dominator per block id; the entry maps to itself.
    """

    idom: Dict[int, int]
    entry: int

    def dominates(self, dominator: int, node: int) -> bool:
        """Whether ``dominator`` dominates ``node`` (reflexively)."""
        current = node
        while True:
            if current == dominator:
                return True
            parent = self.idom.get(current)
            if parent is None or parent == current:
                return current == dominator
            current = parent

    def strictly_dominates(self, dominator: int, node: int) -> bool:
        """Whether ``dominator`` dominates ``node`` and differs from it."""
        return dominator != node and self.dominates(dominator, node)

    def dominators_of(self, node: int) -> List[int]:
        """All dominators of ``node``, innermost first."""
        chain = [node]
        current = node
        while True:
            parent = self.idom.get(current)
            if parent is None or parent == current:
                break
            chain.append(parent)
            current = parent
        return chain

    def children(self) -> Dict[int, List[int]]:
        """Dominator-tree children per node."""
        tree: Dict[int, List[int]] = {}
        for node, parent in self.idom.items():
            if node != parent:
                tree.setdefault(parent, []).append(node)
        return tree

    def depth(self, node: int) -> int:
        """Distance from the entry in the dominator tree."""
        return len(self.dominators_of(node)) - 1


def compute_dominators(cfg: ControlFlowGraph) -> DominatorTree:
    """Compute immediate dominators for all blocks reachable from entry.

    Unreachable blocks are omitted from the result (they have no
    dominators), matching how a binary analyzer treats dead code.
    """
    cfg.validate()
    rpo = cfg.reverse_postorder()
    if not rpo or rpo[0] != cfg.entry:
        raise ProgramImageError("reverse postorder must start at the entry block")
    order_index = {block_id: index for index, block_id in enumerate(rpo)}
    idom: Dict[int, Optional[int]] = {block_id: None for block_id in rpo}
    idom[cfg.entry] = cfg.entry

    def intersect(a: int, b: int) -> int:
        while a != b:
            while order_index[a] > order_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while order_index[b] > order_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block_id in rpo[1:]:
            processed_preds = [
                pred
                for pred in cfg.predecessors(block_id)
                if pred in order_index and idom[pred] is not None
            ]
            if not processed_preds:
                continue
            new_idom = processed_preds[0]
            for pred in processed_preds[1:]:
                new_idom = intersect(pred, new_idom)
            if idom[block_id] != new_idom:
                idom[block_id] = new_idom
                changed = True

    resolved = {
        block_id: dominator
        for block_id, dominator in idom.items()
        if dominator is not None
    }
    return DominatorTree(idom=resolved, entry=cfg.entry)
