"""Basic blocks and control-flow graphs.

A :class:`ControlFlowGraph` is the unit the loop analyses operate on — one
per function, rooted at an entry block.  Blocks carry instruction-address
ranges so profiler samples (IPs) resolve back to blocks.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ProgramImageError


@dataclass
class BasicBlock:
    """One basic block.

    Attributes:
        block_id: Dense integer id, unique within the CFG.
        start_ip: First instruction address (inclusive).
        end_ip: One past the last instruction address.
        label: Optional human-readable name for debugging/tests.
    """

    block_id: int
    start_ip: int = 0
    end_ip: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.end_ip < self.start_ip:
            raise ProgramImageError(
                f"block {self.block_id}: end_ip {self.end_ip:#x} precedes "
                f"start_ip {self.start_ip:#x}"
            )

    def contains_ip(self, ip: int) -> bool:
        """Whether an instruction address falls inside this block."""
        return self.start_ip <= ip < self.end_ip

    def __hash__(self) -> int:
        return hash(self.block_id)


@dataclass
class ControlFlowGraph:
    """A rooted control-flow graph over :class:`BasicBlock` nodes."""

    entry: int = 0
    _blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    _successors: Dict[int, List[int]] = field(default_factory=dict)
    _predecessors: Dict[int, List[int]] = field(default_factory=dict)
    #: Sorted (start_ips, blocks) lookup index; None = stale/unbuilt.
    _ip_index: Optional[Tuple[List[int], List[BasicBlock]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Insert a block; ids must be unique."""
        if block.block_id in self._blocks:
            raise ProgramImageError(f"duplicate block id {block.block_id}")
        self._blocks[block.block_id] = block
        self._successors.setdefault(block.block_id, [])
        self._predecessors.setdefault(block.block_id, [])
        self.invalidate_ip_index()
        return block

    def new_block(self, start_ip: int = 0, end_ip: int = 0, label: str = "") -> BasicBlock:
        """Create and insert a block with the next free id."""
        block_id = max(self._blocks, default=-1) + 1
        return self.add_block(BasicBlock(block_id, start_ip, end_ip, label))

    def add_edge(self, source: int, target: int) -> None:
        """Insert a directed edge; both endpoints must exist."""
        if source not in self._blocks or target not in self._blocks:
            raise ProgramImageError(f"edge {source}->{target} references unknown block")
        if target not in self._successors[source]:
            self._successors[source].append(target)
            self._predecessors[target].append(source)

    def block(self, block_id: int) -> BasicBlock:
        """Look up a block by id."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise ProgramImageError(f"no block with id {block_id}") from None

    def successors(self, block_id: int) -> Sequence[int]:
        """Successor block ids of ``block_id``."""
        return tuple(self._successors.get(block_id, ()))

    def predecessors(self, block_id: int) -> Sequence[int]:
        """Predecessor block ids of ``block_id``."""
        return tuple(self._predecessors.get(block_id, ()))

    @property
    def block_ids(self) -> List[int]:
        """All block ids in insertion order."""
        return list(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self._blocks.values())

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    def validate(self) -> None:
        """Check structural invariants (entry exists, no dangling edges)."""
        if self.entry not in self._blocks:
            raise ProgramImageError(f"entry block {self.entry} does not exist")
        for source, targets in self._successors.items():
            for target in targets:
                if target not in self._blocks:
                    raise ProgramImageError(f"dangling edge {source}->{target}")

    def depth_first_order(self) -> Tuple[List[int], Dict[int, int]]:
        """Iterative DFS preorder from the entry.

        Returns:
            (preorder list of block ids, block id -> preorder number).
            Unreachable blocks are absent.
        """
        order: List[int] = []
        number: Dict[int, int] = {}
        stack: List[Tuple[int, Iterator[int]]] = []
        if self.entry in self._blocks:
            number[self.entry] = 0
            order.append(self.entry)
            stack.append((self.entry, iter(self._successors[self.entry])))
        while stack:
            _node, successor_iter = stack[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in number:
                    number[successor] = len(order)
                    order.append(successor)
                    stack.append((successor, iter(self._successors[successor])))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
        return order, number

    def reverse_postorder(self) -> List[int]:
        """Reverse postorder from the entry (the order dataflow wants)."""
        postorder: List[int] = []
        visited: Set[int] = set()
        stack: List[Tuple[int, Iterator[int]]] = []
        if self.entry in self._blocks:
            visited.add(self.entry)
            stack.append((self.entry, iter(self._successors[self.entry])))
        while stack:
            node, successor_iter = stack[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, iter(self._successors[successor])))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()
        return list(reversed(postorder))

    def reachable_blocks(self) -> Set[int]:
        """Ids of blocks reachable from the entry."""
        order, _ = self.depth_first_order()
        return set(order)

    def invalidate_ip_index(self) -> None:
        """Drop the sorted IP index.

        Must be called whenever a block's ``start_ip``/``end_ip`` is mutated
        after insertion (the builder does this when it splits blocks);
        ``add_block`` calls it automatically.
        """
        self._ip_index = None

    def _build_ip_index(self) -> Tuple[List[int], List[BasicBlock]]:
        """Sorted (start_ips, blocks) over non-empty blocks."""
        blocks = sorted(
            (b for b in self._blocks.values() if b.end_ip > b.start_ip),
            key=lambda b: b.start_ip,
        )
        index = ([b.start_ip for b in blocks], blocks)
        self._ip_index = index
        return index

    def block_at_ip(self, ip: int) -> Optional[BasicBlock]:
        """The block whose address range covers ``ip``, or None.

        Binary search over a lazily built index sorted by ``start_ip``
        (block ranges never overlap — they are carved from one monotonic
        text cursor), rebuilt after any block insertion or range mutation.
        """
        index = self._ip_index
        if index is None:
            index = self._build_ip_index()
        starts, blocks = index
        position = bisect_right(starts, ip) - 1
        if position >= 0 and blocks[position].contains_ip(ip):
            return blocks[position]
        return None

    def _block_at_ip_linear(self, ip: int) -> Optional[BasicBlock]:
        """Reference linear scan — kept as the oracle for regression tests."""
        for block in self._blocks.values():
            if block.contains_ip(ip):
                return block
        return None
