"""Program model: CFGs, loop analysis, and symbolication.

CCProf's offline analyzer "retrieves the control flow graph (CFG) of the
target application from the machine code and uses interval analysis to
identify loops" (paper §4, citing Havlak).  In this reproduction the binary
decoder is replaced by structured :class:`~repro.program.image.ProgramImage`
objects that workloads emit (there is no native binary to decode), but the
analysis algorithms are the real thing:

- :mod:`repro.program.cfg` — basic blocks and control-flow graphs.
- :mod:`repro.program.dominators` — Cooper-Harvey-Kennedy iterative
  dominators and the dominator tree.
- :mod:`repro.program.loops` — natural-loop detection plus the Havlak
  loop-nesting forest (handles irreducible regions).
- :mod:`repro.program.image` — program images: functions, line table,
  address ranges.
- :mod:`repro.program.builder` — fluent construction of images with nested
  loops, used by every workload.
- :mod:`repro.program.symbols` — IP → function / source line / innermost
  loop resolution.
"""

from repro.program.cfg import BasicBlock, ControlFlowGraph
from repro.program.dominators import DominatorTree, compute_dominators
from repro.program.loops import Loop, LoopNestingForest, find_natural_loops, havlak_loops
from repro.program.image import Function, ProgramImage, SourceLocation
from repro.program.builder import ImageBuilder
from repro.program.symbols import SymbolInfo, Symbolizer

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "DominatorTree",
    "compute_dominators",
    "Loop",
    "LoopNestingForest",
    "find_natural_loops",
    "havlak_loops",
    "Function",
    "ProgramImage",
    "SourceLocation",
    "ImageBuilder",
    "SymbolInfo",
    "Symbolizer",
]
