"""Program images: the analyzer's view of a binary.

A :class:`ProgramImage` stands in for the machine code CCProf's offline
analyzer decodes: a set of functions, each with a CFG whose basic blocks
carry instruction-address ranges and source locations.  Loop structure is
*not* stored — it is recovered by running Havlak interval analysis on the
CFGs, exactly as the paper's analyzer does, so the loop-detection code path
is genuinely exercised.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.errors import ProgramImageError
from repro.program.cfg import BasicBlock, ControlFlowGraph
from repro.program.loops import Loop, LoopNestingForest, havlak_loops


@dataclass(frozen=True)
class SourceLocation:
    """A source coordinate, e.g. ``needle.cpp:189``."""

    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass
class Function:
    """One function: a CFG plus block-level source locations.

    Attributes:
        name: Symbol name.
        cfg: Control-flow graph of the function.
        locations: Source location per block id (optional per block;
            anonymous blocks model closed-source code like MKL, §6.3).
    """

    name: str
    cfg: ControlFlowGraph
    locations: Dict[int, SourceLocation] = field(default_factory=dict)

    def location_of_block(self, block_id: int) -> Optional[SourceLocation]:
        """Source location of a block, or None for anonymous blocks."""
        return self.locations.get(block_id)

    def address_range(self) -> Tuple[int, int]:
        """(lowest start_ip, highest end_ip) over all blocks."""
        starts = [block.start_ip for block in self.cfg if block.end_ip > block.start_ip]
        ends = [block.end_ip for block in self.cfg if block.end_ip > block.start_ip]
        if not starts:
            raise ProgramImageError(f"function {self.name!r} has no sized blocks")
        return min(starts), max(ends)


class ProgramImage:
    """Functions + a fast IP index, the input to offline analysis."""

    def __init__(self, functions: Optional[List[Function]] = None) -> None:
        self.functions: List[Function] = list(functions or [])
        self._index_built = False
        self._starts: List[int] = []
        self._entries: List[Tuple[int, Function, BasicBlock]] = []

    def add_function(self, function: Function) -> None:
        """Register a function; invalidates the IP index."""
        self.functions.append(function)
        self._index_built = False
        self.loop_forest.cache_clear()

    def _build_index(self) -> None:
        entries: List[Tuple[int, Function, BasicBlock]] = []
        for function in self.functions:
            for block in function.cfg:
                if block.end_ip > block.start_ip:
                    entries.append((block.start_ip, function, block))
        entries.sort(key=lambda entry: entry[0])
        for index in range(1, len(entries)):
            previous = entries[index - 1]
            current = entries[index]
            if previous[2].end_ip > current[0]:
                raise ProgramImageError(
                    f"overlapping blocks: {previous[1].name}/{previous[2].block_id} "
                    f"and {current[1].name}/{current[2].block_id}"
                )
        self._entries = entries
        self._starts = [entry[0] for entry in entries]
        self._index_built = True

    def resolve_ip(self, ip: int) -> Optional[Tuple[Function, BasicBlock]]:
        """Map an instruction pointer to (function, block), or None."""
        if not self._index_built:
            self._build_index()
        index = bisect.bisect_right(self._starts, ip) - 1
        if index < 0:
            return None
        _, function, block = self._entries[index]
        return (function, block) if block.contains_ip(ip) else None

    def function_named(self, name: str) -> Function:
        """Look up a function by symbol name."""
        for function in self.functions:
            if function.name == name:
                return function
        raise ProgramImageError(f"no function named {name!r}")

    @lru_cache(maxsize=None)
    def loop_forest(self, function_name: str) -> LoopNestingForest:
        """Havlak loop-nesting forest of one function (cached).

        This is the interval analysis the paper's analyzer runs over the
        recovered CFG.
        """
        function = self.function_named(function_name)
        return havlak_loops(function.cfg)

    def innermost_loop_at_ip(self, ip: int) -> Optional[Loop]:
        """The innermost loop whose body covers ``ip``, or None."""
        resolved = self.resolve_ip(ip)
        if resolved is None:
            return None
        function, block = resolved
        return self.loop_forest(function.name).innermost_loop(block.block_id)

    def loop_name(self, function: Function, loop: Loop) -> str:
        """Human name of a loop: its header's ``file:line``.

        Matches the paper's reporting style (``needle.cpp:189``).  Loops
        over anonymous code report ``<function>@<header-ip>`` the way CCProf
        labels MKL's closed-source blocks.
        """
        location = function.location_of_block(loop.header)
        if location is not None:
            return str(location)
        header_ip = function.cfg.block(loop.header).start_ip
        return f"{function.name}@{header_ip:#x}"
