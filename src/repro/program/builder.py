"""Fluent construction of program images.

Workloads describe their kernels through an :class:`ImageBuilder`: declare a
function, open nested loops, and add statements.  The builder lays out
instruction addresses in a synthetic text segment and wires up a *real* CFG
(preheader -> header <-> body, header -> exit) so that Havlak interval
analysis genuinely rediscovers the loop structure from the graph — nothing
about loops is smuggled to the analyzer out of band.

Typical use::

    builder = ImageBuilder()
    fn = builder.function("nw_kernel", file="needle.cpp")
    outer = fn.begin_loop(line=189)
    load_ip = fn.add_statement(line=190)     # IP used when emitting accesses
    fn.end_loop()
    fn.finish()
    image = builder.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ProgramImageError
from repro.program.cfg import ControlFlowGraph
from repro.program.image import Function, ProgramImage, SourceLocation

#: Default base of the synthetic text segment (conventional ELF load base).
DEFAULT_TEXT_BASE = 0x40_0000

#: Bytes of address space per synthetic instruction.
INSTRUCTION_SIZE = 4


@dataclass
class _OpenLoop:
    """Bookkeeping for a loop currently being built."""

    header_block: int
    body_block: int
    line: int


@dataclass
class FunctionBuilder:
    """Builds one function; obtained from :meth:`ImageBuilder.function`.

    With ``anonymous=True`` no source locations are recorded, modelling
    closed-source code (the paper's MKL case, §6.3): loops then report as
    ``<function>@<ip>`` instead of ``file:line``.
    """

    name: str
    file: str
    anonymous: bool
    _image_builder: "ImageBuilder"
    _cfg: ControlFlowGraph = field(default_factory=ControlFlowGraph)
    _locations: Dict[int, SourceLocation] = field(default_factory=dict)
    _loop_stack: List[_OpenLoop] = field(default_factory=list)
    _current_block: int = field(init=False)
    _finished: bool = field(default=False)

    def __post_init__(self) -> None:
        entry = self._new_block(label="entry")
        self._cfg.entry = entry
        self._current_block = entry

    def _new_block(self, label: str = "", line: Optional[int] = None) -> int:
        start = self._image_builder._take_ips(1)
        block = self._cfg.new_block(
            start_ip=start, end_ip=start + INSTRUCTION_SIZE, label=label
        )
        if line is not None and not self.anonymous:
            self._locations[block.block_id] = SourceLocation(self.file, line)
        return block.block_id

    def add_statement(self, line: int, *, count: int = 1) -> int:
        """Append ``count`` instructions to the current block.

        Returns:
            The IP of the first appended instruction — the address workloads
            stamp on the memory accesses this statement performs.
        """
        if self._finished:
            raise ProgramImageError(f"function {self.name!r} already finished")
        if count <= 0:
            raise ProgramImageError(f"statement count must be positive: {count}")
        start = self._image_builder._take_ips(count)
        block = self._cfg.block(self._current_block)
        existing = self._locations.get(block.block_id)
        needs_split = block.end_ip != start or (
            not self.anonymous and existing is not None and existing.line != line
        )
        if needs_split:
            # Either a different block was laid out in between (loop
            # structure, shared text cursor) or the source line changed:
            # open a fall-through block so the line table stays
            # statement-accurate, the way a real debug line table is.
            new_block = self._new_block(label=f"stmt@{line}")
            self._cfg.add_edge(self._current_block, new_block)
            self._current_block = new_block
            block = self._cfg.block(new_block)
            block.start_ip = start
        block.end_ip = start + count * INSTRUCTION_SIZE
        # The block is already inside the CFG when its range is rewritten
        # above, so the CFG's sorted IP index (if built) is now stale.
        self._cfg.invalidate_ip_index()
        if not self.anonymous:
            self._locations.setdefault(block.block_id, SourceLocation(self.file, line))
        return start

    def begin_loop(self, line: int, label: str = "") -> str:
        """Open a loop headed at ``file:line``; statements added until
        :meth:`end_loop` fall in its body.

        Returns:
            The loop's report name (``file:line``), handy for assertions.
        """
        if self._finished:
            raise ProgramImageError(f"function {self.name!r} already finished")
        header = self._new_block(label=label or f"loop@{line}", line=line)
        body = self._new_block(label=f"body@{line}", line=line)
        self._cfg.add_edge(self._current_block, header)
        self._cfg.add_edge(header, body)
        self._loop_stack.append(_OpenLoop(header_block=header, body_block=body, line=line))
        self._current_block = body
        return f"{self.file}:{line}"

    def end_loop(self) -> None:
        """Close the innermost open loop: latch edge + exit block."""
        if not self._loop_stack:
            raise ProgramImageError(f"function {self.name!r}: end_loop without begin_loop")
        open_loop = self._loop_stack.pop()
        # Latch: current position jumps back to the header.
        self._cfg.add_edge(self._current_block, open_loop.header_block)
        # Exit: the header falls through past the loop.
        exit_block = self._new_block(label=f"exit@{open_loop.line}", line=open_loop.line)
        self._cfg.add_edge(open_loop.header_block, exit_block)
        self._current_block = exit_block

    def current_loop_name(self) -> Optional[str]:
        """Report name of the innermost open loop, or None."""
        if not self._loop_stack:
            return None
        return f"{self.file}:{self._loop_stack[-1].line}"

    def finish(self) -> Function:
        """Close the function and register it with the image builder."""
        if self._finished:
            raise ProgramImageError(f"function {self.name!r} already finished")
        if self._loop_stack:
            raise ProgramImageError(
                f"function {self.name!r} finished with {len(self._loop_stack)} open loops"
            )
        self._finished = True
        function = Function(name=self.name, cfg=self._cfg, locations=dict(self._locations))
        self._image_builder._register(function)
        return function


class ImageBuilder:
    """Allocates text-segment addresses and collects functions."""

    def __init__(self, text_base: int = DEFAULT_TEXT_BASE) -> None:
        if text_base < 0:
            raise ProgramImageError(f"text base must be non-negative: {text_base}")
        self._cursor = text_base
        self._functions: List[Function] = []

    def _take_ips(self, count: int) -> int:
        start = self._cursor
        self._cursor += count * INSTRUCTION_SIZE
        return start

    def _register(self, function: Function) -> None:
        self._functions.append(function)

    def function(
        self, name: str, file: str = "<anonymous>", anonymous: bool = False
    ) -> FunctionBuilder:
        """Start building a function whose blocks live in ``file``.

        Args:
            name: Symbol name (must be unique in the image).
            file: Source file blocks are attributed to.
            anonymous: Suppress source locations (closed-source code).
        """
        if any(existing.name == name for existing in self._functions):
            raise ProgramImageError(f"duplicate function name {name!r}")
        return FunctionBuilder(
            name=name, file=file, anonymous=anonymous, _image_builder=self
        )

    def build(self) -> ProgramImage:
        """Produce the immutable program image."""
        return ProgramImage(functions=list(self._functions))
