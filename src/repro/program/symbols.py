"""Symbolication: instruction pointers back to code.

The offline analyzer attributes every sample to a function, source line,
and innermost loop (code-centric attribution, paper §3.4).  The
:class:`Symbolizer` packages those lookups over a
:class:`~repro.program.image.ProgramImage` with memoization, since profiles
contain many samples from few distinct IPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.program.image import ProgramImage, SourceLocation
from repro.program.loops import Loop


@dataclass(frozen=True)
class SymbolInfo:
    """Resolution of one instruction pointer.

    Attributes:
        ip: The resolved instruction pointer.
        function_name: Containing function, or ``"<unknown>"``.
        location: Source location of the containing block, or None for
            anonymous code (the MKL case, §6.3).
        loop_name: Report name of the innermost enclosing loop, or None
            when the IP is not inside any loop.
        loop_depth: Nesting depth of that loop (0 when not in a loop).
    """

    ip: int
    function_name: str
    location: Optional[SourceLocation]
    loop_name: Optional[str]
    loop_depth: int

    @property
    def is_anonymous(self) -> bool:
        """True when no source location is known for this IP."""
        return self.location is None

    def describe(self) -> str:
        """One-line rendering, e.g. ``needle.cpp:189 in nw_kernel``."""
        where = str(self.location) if self.location else f"{self.function_name}@{self.ip:#x}"
        loop = f" [loop {self.loop_name}]" if self.loop_name else ""
        return f"{where} in {self.function_name}{loop}"


_UNKNOWN = SymbolInfo(
    ip=0, function_name="<unknown>", location=None, loop_name=None, loop_depth=0
)


class Symbolizer:
    """Memoized IP resolution over a program image."""

    def __init__(self, image: ProgramImage) -> None:
        self.image = image
        self._cache: Dict[int, SymbolInfo] = {}

    def resolve(self, ip: int) -> SymbolInfo:
        """Resolve an IP; unknown IPs yield the ``<unknown>`` sentinel."""
        cached = self._cache.get(ip)
        if cached is not None:
            return cached
        info = self._resolve_uncached(ip)
        self._cache[ip] = info
        return info

    def _resolve_uncached(self, ip: int) -> SymbolInfo:
        resolved = self.image.resolve_ip(ip)
        if resolved is None:
            return SymbolInfo(
                ip=ip,
                function_name=_UNKNOWN.function_name,
                location=None,
                loop_name=None,
                loop_depth=0,
            )
        function, block = resolved
        forest = self.image.loop_forest(function.name)
        loop: Optional[Loop] = forest.innermost_loop(block.block_id)
        loop_name = self.image.loop_name(function, loop) if loop else None
        return SymbolInfo(
            ip=ip,
            function_name=function.name,
            location=function.location_of_block(block.block_id),
            loop_name=loop_name,
            loop_depth=loop.depth if loop else 0,
        )

    def loop_of(self, ip: int) -> Optional[str]:
        """Shorthand: innermost loop name of an IP, or None."""
        return self.resolve(ip).loop_name
