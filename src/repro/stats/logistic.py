"""Simple logistic regression, fit by IRLS.

The paper (§3.4) classifies "conflict miss / no conflict miss" with *simple
logistic regression*: one independent variable (the contribution factor)
and a binary outcome.  This module implements the general binary logistic
model

    P(y = 1 | x) = sigmoid(b0 + b1*x1 + ... + bk*xk)

fit by iteratively reweighted least squares (Newton-Raphson on the
log-likelihood), with a small ridge term for stability on separable data —
the 16-loop training set of the paper is perfectly separable at fine
sampling periods, where unpenalized ML estimates diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelError

#: Ridge penalty keeping IRLS finite on separable data.
DEFAULT_RIDGE = 1e-4


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to avoid overflow in exp for wildly separable fits.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500.0, 500.0)))


@dataclass(frozen=True)
class LogisticModel:
    """A fitted binary logistic model.

    Attributes:
        coefficients: ``[b0, b1, ..., bk]`` — intercept first.
        converged: Whether IRLS met the tolerance before the iteration cap.
        iterations: IRLS iterations performed.
    """

    coefficients: np.ndarray
    converged: bool
    iterations: int

    @property
    def intercept(self) -> float:
        """The intercept term b0."""
        return float(self.coefficients[0])

    @property
    def slope(self) -> float:
        """b1, the single-feature slope (simple logistic regression)."""
        if len(self.coefficients) != 2:
            raise ModelError("slope is only defined for one-feature models")
        return float(self.coefficients[1])

    def predict_proba(self, features: Sequence[float]) -> np.ndarray:
        """P(y=1) for each row of ``features`` (1-D for simple models)."""
        design = _design_matrix(np.asarray(features, dtype=float))
        if design.shape[1] != len(self.coefficients):
            raise ModelError(
                f"expected {len(self.coefficients) - 1} features, "
                f"got {design.shape[1] - 1}"
            )
        return _sigmoid(design @ self.coefficients)

    def predict(self, features: Sequence[float], threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)

    def decision_boundary(self) -> float:
        """Feature value where P(y=1) = 0.5 (simple models only).

        For the paper's model this is the contribution-factor cut point
        separating conflict from no-conflict loops.
        """
        slope = self.slope
        if slope == 0.0:
            raise ModelError("slope is zero; no finite decision boundary")
        return -self.intercept / slope


def _design_matrix(features: np.ndarray) -> np.ndarray:
    if features.ndim == 1:
        features = features.reshape(-1, 1)
    ones = np.ones((features.shape[0], 1))
    return np.hstack([ones, features])


def fit_logistic(
    features: Sequence[float],
    labels: Sequence[int],
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    ridge: float = DEFAULT_RIDGE,
) -> LogisticModel:
    """Fit binary logistic regression by IRLS.

    Args:
        features: Shape (n,) for simple regression or (n, k).
        labels: Binary outcomes (0/1), length n.
        max_iterations: Newton-step cap.
        tolerance: Convergence threshold on the max coefficient update.
        ridge: L2 penalty (excluding the intercept) for separable data.

    Raises:
        ModelError: On empty data, mismatched lengths, non-binary labels,
            or single-class labels (no boundary to learn).
    """
    x = np.asarray(features, dtype=float)
    y = np.asarray(labels, dtype=float)
    if x.size == 0:
        raise ModelError("cannot fit on empty data")
    design = _design_matrix(x)
    if design.shape[0] != y.shape[0]:
        raise ModelError(
            f"feature/label length mismatch: {design.shape[0]} vs {y.shape[0]}"
        )
    unique = set(np.unique(y).tolist())
    if not unique <= {0.0, 1.0}:
        raise ModelError(f"labels must be binary 0/1, got values {sorted(unique)}")
    if len(unique) < 2:
        raise ModelError("labels contain a single class; nothing to classify")

    n, k = design.shape
    beta = np.zeros(k)
    penalty = np.eye(k) * ridge
    penalty[0, 0] = 0.0  # never penalize the intercept

    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        probabilities = _sigmoid(design @ beta)
        weights = probabilities * (1.0 - probabilities)
        # Guard against exactly-zero weights on separable points.
        weights = np.maximum(weights, 1e-12)
        gradient = design.T @ (y - probabilities) - penalty @ beta
        hessian = (design * weights[:, None]).T @ design + penalty
        try:
            step = np.linalg.solve(hessian, gradient)
        except np.linalg.LinAlgError as exc:
            raise ModelError(f"singular IRLS system at iteration {iteration}") from exc
        beta = beta + step
        if float(np.max(np.abs(step))) < tolerance:
            converged = True
            break

    return LogisticModel(coefficients=beta, converged=converged, iterations=iteration)
