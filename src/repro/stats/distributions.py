"""Histograms, empirical CDFs, and distribution summaries.

The paper leans on two distribution views: per-set miss histograms
(Figure 3) and cumulative distribution functions of RCD (Figures 7 and 9).
Both are provided here as small immutable-ish value types plus a couple of
imbalance measures.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ModelError


@dataclass
class Histogram:
    """Integer-valued histogram (e.g. misses per cache set, RCD counts)."""

    counts: Counter = field(default_factory=Counter)

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "Histogram":
        """Build from raw observations."""
        return cls(counts=Counter(values))

    def add(self, value: int, weight: int = 1) -> None:
        """Record one (or ``weight``) observation(s) of ``value``."""
        self.counts[value] += weight

    @property
    def total(self) -> int:
        """Total observations."""
        return sum(self.counts.values())

    def frequency(self, value: int) -> float:
        """Relative frequency of ``value``."""
        total = self.total
        return self.counts.get(value, 0) / total if total else 0.0

    def mode(self) -> int:
        """Most frequent value."""
        if not self.counts:
            raise ModelError("mode of an empty histogram")
        return self.counts.most_common(1)[0][0]

    def mean(self) -> float:
        """Weighted mean of observed values."""
        total = self.total
        if not total:
            raise ModelError("mean of an empty histogram")
        return sum(value * count for value, count in self.counts.items()) / total

    def sorted_items(self) -> List[Tuple[int, int]]:
        """(value, count) pairs ordered by value."""
        return sorted(self.counts.items())

    def as_cdf(self) -> "EmpiricalCdf":
        """Convert to an empirical CDF over the observed values."""
        return EmpiricalCdf.from_histogram(self)


@dataclass(frozen=True)
class EmpiricalCdf:
    """Empirical CDF over integer support.

    ``probability_at(x)`` is P(X <= x) — the quantity plotted on the y-axis
    of the paper's Figures 7 and 9 ("cumulative probability of L1 cache
    misses with the increasing order of RCDs").
    """

    support: Tuple[int, ...]
    cumulative: Tuple[float, ...]

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "EmpiricalCdf":
        """Build from raw observations."""
        return cls.from_histogram(Histogram.from_values(values))

    @classmethod
    def from_histogram(cls, histogram: Histogram) -> "EmpiricalCdf":
        """Build from a histogram."""
        total = histogram.total
        if not total:
            raise ModelError("CDF of an empty distribution")
        support: List[int] = []
        cumulative: List[float] = []
        running = 0
        for value, count in histogram.sorted_items():
            running += count
            support.append(value)
            cumulative.append(running / total)
        return cls(support=tuple(support), cumulative=tuple(cumulative))

    def probability_at(self, value: int) -> float:
        """P(X <= value)."""
        index = int(np.searchsorted(self.support, value, side="right")) - 1
        if index < 0:
            return 0.0
        return self.cumulative[index]

    def quantile(self, q: float) -> int:
        """Smallest x with P(X <= x) >= q."""
        if not 0.0 < q <= 1.0:
            raise ModelError(f"quantile must be in (0, 1]: {q}")
        index = int(np.searchsorted(self.cumulative, q, side="left"))
        index = min(index, len(self.support) - 1)
        return self.support[index]

    def series(self) -> List[Tuple[int, float]]:
        """(x, P(X <= x)) pairs, the plot-ready CDF curve."""
        return list(zip(self.support, self.cumulative))


def gini_coefficient(counts: Sequence[int]) -> float:
    """Gini coefficient of a count vector: 0 = balanced, →1 = concentrated.

    A scalar summary of per-set miss imbalance (the Figure 3 skew):
    uniform set utilization gives 0, all misses on one set approaches 1.
    """
    values = np.sort(np.asarray(counts, dtype=float))
    if values.size == 0:
        raise ModelError("Gini of an empty vector")
    total = values.sum()
    if total == 0.0:
        return 0.0
    n = values.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * values)) / (n * total) - (n + 1.0) / n)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / min / max / std of a sample (population std)."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ModelError("summary of an empty sample")
    return {
        "count": float(data.size),
        "mean": float(data.mean()),
        "median": float(np.median(data)),
        "min": float(data.min()),
        "max": float(data.max()),
        "std": float(data.std()),
    }
