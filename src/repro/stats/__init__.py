"""Statistics substrate.

CCProf's conflict decision is statistical: a *simple logistic regression*
over the contribution factor (paper §3.4), validated by k-fold
cross-validation and F1-score (§5.2).  This package implements those pieces
from first principles:

- :mod:`repro.stats.logistic` — one-variable (and general) logistic
  regression fit by iteratively reweighted least squares.
- :mod:`repro.stats.validation` — k-fold cross-validation, precision,
  recall, F1.
- :mod:`repro.stats.distributions` — histograms, empirical CDFs, and
  summary statistics used throughout the RCD analyses.
"""

from repro.stats.logistic import LogisticModel, fit_logistic
from repro.stats.validation import (
    ConfusionCounts,
    cross_validate_f1,
    f1_score,
    k_fold_indices,
    precision_recall_f1,
)
from repro.stats.distributions import (
    EmpiricalCdf,
    Histogram,
    gini_coefficient,
    summarize,
)

__all__ = [
    "LogisticModel",
    "fit_logistic",
    "ConfusionCounts",
    "cross_validate_f1",
    "f1_score",
    "k_fold_indices",
    "precision_recall_f1",
    "EmpiricalCdf",
    "Histogram",
    "gini_coefficient",
    "summarize",
]
