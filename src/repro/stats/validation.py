"""Model validation: k-fold cross-validation and F1 scoring.

The paper evaluates its classifier "using k-fold (e.g., 8-fold)
cross-validation" and measures accuracy with the F1-score, "the harmonic
mean of precision and recall" (§5.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.stats.logistic import LogisticModel, fit_logistic


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix tallies."""

    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0 when nothing was predicted positive."""
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 0 when there were no positives."""
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions."""
        total = (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )
        return (self.true_positive + self.true_negative) / total if total else 0.0

    def combine(self, other: "ConfusionCounts") -> "ConfusionCounts":
        """Pool two confusion matrices (micro-averaging across folds)."""
        return ConfusionCounts(
            true_positive=self.true_positive + other.true_positive,
            false_positive=self.false_positive + other.false_positive,
            true_negative=self.true_negative + other.true_negative,
            false_negative=self.false_negative + other.false_negative,
        )


def confusion_counts(
    predictions: Sequence[int], labels: Sequence[int]
) -> ConfusionCounts:
    """Tally a confusion matrix from parallel prediction/label sequences."""
    if len(predictions) != len(labels):
        raise ModelError(
            f"prediction/label length mismatch: {len(predictions)} vs {len(labels)}"
        )
    tp = fp = tn = fn = 0
    for predicted, actual in zip(predictions, labels):
        if predicted and actual:
            tp += 1
        elif predicted and not actual:
            fp += 1
        elif not predicted and not actual:
            tn += 1
        else:
            fn += 1
    return ConfusionCounts(tp, fp, tn, fn)


def precision_recall_f1(
    predictions: Sequence[int], labels: Sequence[int]
) -> Tuple[float, float, float]:
    """(precision, recall, F1) of binary predictions."""
    counts = confusion_counts(predictions, labels)
    return counts.precision, counts.recall, counts.f1


def f1_score(predictions: Sequence[int], labels: Sequence[int]) -> float:
    """F1-score of binary predictions."""
    return confusion_counts(predictions, labels).f1


def k_fold_indices(count: int, folds: int, seed: int = 0) -> List[List[int]]:
    """Shuffle ``count`` indices into ``folds`` near-equal folds.

    Deterministic given the seed, so experiments are reproducible.
    """
    if folds < 2:
        raise ModelError(f"need at least 2 folds, got {folds}")
    if count < folds:
        raise ModelError(f"cannot split {count} samples into {folds} folds")
    indices = list(range(count))
    random.Random(seed).shuffle(indices)
    return [indices[fold::folds] for fold in range(folds)]


#: Signature of a model-fitting callback for cross-validation.
FitFunction = Callable[[Sequence[float], Sequence[int]], LogisticModel]


def cross_validate_f1(
    features: Sequence[float],
    labels: Sequence[int],
    *,
    folds: int = 8,
    seed: int = 0,
    fit: FitFunction = fit_logistic,
    threshold: float = 0.5,
) -> float:
    """Micro-averaged F1 over k-fold cross-validation.

    Each fold is held out once; a model fit on the remainder predicts it.
    Folds whose training split is single-class (possible with tiny data)
    fall back to predicting that class everywhere, mirroring what a
    degenerate logistic fit would saturate to.
    """
    x = np.asarray(features, dtype=float)
    y = np.asarray(labels, dtype=int)
    if x.shape[0] != y.shape[0]:
        raise ModelError(f"feature/label length mismatch: {x.shape[0]} vs {y.shape[0]}")
    pooled = ConfusionCounts()
    for fold in k_fold_indices(len(y), folds, seed=seed):
        holdout = np.asarray(fold, dtype=int)
        mask = np.ones(len(y), dtype=bool)
        mask[holdout] = False
        train_x, train_y = x[mask], y[mask]
        test_x, test_y = x[holdout], y[holdout]
        if len(set(train_y.tolist())) < 2:
            majority = int(train_y[0]) if len(train_y) else 0
            predictions = np.full(len(test_y), majority)
        else:
            model = fit(train_x, train_y)
            predictions = model.predict(test_x, threshold=threshold)
        pooled = pooled.combine(confusion_counts(predictions.tolist(), test_y.tolist()))
    return pooled.f1
