"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming mistakes such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Raised for invalid cache geometry (non-power-of-two sizes, etc.)."""


class AllocationError(ReproError):
    """Raised for invalid virtual-heap operations (double free, overlap)."""


class TraceError(ReproError):
    """Raised for malformed traces or trace files."""


class ProgramImageError(ReproError):
    """Raised for malformed program images or CFGs."""


class SamplingError(ReproError):
    """Raised for invalid PMU sampling configuration."""


class AnalysisError(ReproError):
    """Raised when offline analysis cannot proceed (missing data, etc.)."""


class ModelError(ReproError):
    """Raised for invalid statistical-model configuration or unfit models."""
