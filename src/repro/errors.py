"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming mistakes such as :class:`TypeError`.

Each error family carries a short machine-readable ``code`` (a class
attribute) and a stable process ``exit_code``.  The CLI maps uncaught
:class:`ReproError` subclasses onto these exit codes so scripts can
distinguish, say, a corrupt trace (``trace``) from an exhausted PMU attach
retry loop (``retry``) without parsing stderr.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Attributes:
        code: Short machine-readable family identifier (stable API).
        exit_code: Process exit status the CLI uses for this family.
    """

    code: str = "repro"
    exit_code: int = 1


class GeometryError(ReproError):
    """Raised for invalid cache geometry (non-power-of-two sizes, etc.)."""

    code = "geometry"
    exit_code = 2


class AllocationError(ReproError):
    """Raised for invalid virtual-heap operations (double free, overlap)."""

    code = "allocation"
    exit_code = 3


class TraceError(ReproError):
    """Raised for malformed traces or trace files."""

    code = "trace"
    exit_code = 4


class ProgramImageError(ReproError):
    """Raised for malformed program images or CFGs."""

    code = "image"
    exit_code = 5


class SamplingError(ReproError):
    """Raised for invalid PMU sampling configuration."""

    code = "sampling"
    exit_code = 6


class AnalysisError(ReproError):
    """Raised when offline analysis cannot proceed (missing data, etc.)."""

    code = "analysis"
    exit_code = 7


class ModelError(ReproError):
    """Raised for invalid statistical-model configuration or unfit models."""

    code = "model"
    exit_code = 8


class DataQualityError(ReproError):
    """Raised in strict mode when the observation channel is too degraded.

    Lenient pipelines downgrade the same conditions to warnings in the
    report's :class:`~repro.core.report.DataQuality` section instead.
    """

    code = "data-quality"
    exit_code = 9


class ServiceError(ReproError):
    """Raised for profiling-service failures (``ccprof serve``).

    The family covers the daemon's own failure modes — admission
    rejections, blown deadlines, open tenant circuits, journal damage,
    crashed workers.  Each subclass keeps the family ``code`` (and exit
    code) and adds a machine-readable ``reason`` so service responses can
    be dispatched on without string matching.
    """

    code = "service"
    exit_code = 12  # 11 belongs to the manifest family (repro.obs.manifest)
    reason: str = "service"


class AdmissionRejectedError(ServiceError):
    """Raised when admission control rejects a job (backpressure).

    Attributes:
        retry_after: Suggested client wait in seconds before resubmitting.
    """

    reason = "admission-rejected"

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class CircuitOpenError(AdmissionRejectedError):
    """Raised when a tenant's circuit breaker is open (failing fast)."""

    reason = "circuit-open"


class DeadlineExceededError(ServiceError):
    """Raised when a job exhausts its per-request deadline."""

    reason = "deadline-exceeded"


class WorkerCrashError(ServiceError):
    """Raised when a worker dies mid-job (injected or real)."""

    reason = "worker-crash"


class JournalError(ServiceError):
    """Raised for unusable job-journal files (bad magic, no directory)."""

    reason = "journal"


class ProtocolError(ServiceError):
    """Raised for malformed or oversized service requests."""

    reason = "protocol"


class WatchError(ReproError):
    """Raised for trajectory-watch failures (``ccprof watch``).

    Covers unreadable or unordered trajectory inputs and — via
    :class:`WatchRegressionError` — the gate itself, so CI can
    distinguish "the watch could not run" from "the watch ran and the
    trajectory regressed" without parsing stderr.
    """

    code = "watch"
    exit_code = 13


class WatchRegressionError(WatchError):
    """Raised when a watched trajectory crosses a regression threshold.

    Attributes:
        regressions: The failing findings' messages, in report order.
    """

    def __init__(self, message: str, *, regressions: list = None) -> None:
        super().__init__(message)
        self.regressions = regressions or []


class RetryExhaustedError(ReproError):
    """Raised when a retried operation failed on every allowed attempt.

    Attributes:
        attempts: How many attempts were made.
        last_error: The exception raised by the final attempt (also the
            ``__cause__`` when raised via :func:`repro.robustness.retry`).
    """

    code = "retry"
    exit_code = 10

    def __init__(
        self, message: str, *, attempts: int = 0, last_error: Exception = None
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error
