"""Multi-threaded profiling.

"As libmonitor captures process and thread creation, CCProf sets up the
profiling configuration for each thread/process and monitors them
individually" (paper §4), and the evaluation runs 28/8 threads — two SMT
threads per core *sharing* each L1.

This module reproduces that structure over simulated threads:

- every thread gets its own PMU sampler state (countdown, RNG, sample log),
  exactly like per-thread PMU contexts;
- threads are grouped onto cores: threads sharing a core share one
  simulated L1 (the SMT case), threads on different cores get private L1s;
- per-thread profiles can be analyzed individually or merged, mirroring
  CCProf's "serializes the profiles from different threads" step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import SamplingError
from repro.pmu.event import L1_MISS_EVENT, PmuEvent
from repro.pmu.periods import PeriodDistribution, UniformJitterPeriod
from repro.pmu.sampler import AddressSample, SamplingResult
from repro.trace.record import MemoryAccess
from repro.trace.stream import TraceStream, interleave_round_robin


@dataclass
class MultiThreadProfile:
    """Per-thread sampling results plus run-wide totals."""

    per_thread: Dict[int, SamplingResult] = field(default_factory=dict)

    def thread(self, thread_id: int) -> SamplingResult:
        """One thread's result."""
        try:
            return self.per_thread[thread_id]
        except KeyError:
            raise SamplingError(f"no profile for thread {thread_id}") from None

    def merged(self) -> SamplingResult:
        """All threads' samples serialized into one result (time order
        approximated by access index, like CCProf's merged log)."""
        if not self.per_thread:
            raise SamplingError("no threads were profiled")
        any_result = next(iter(self.per_thread.values()))
        merged = SamplingResult(
            mean_period=any_result.mean_period, geometry=any_result.geometry
        )
        samples: List[AddressSample] = []
        for result in self.per_thread.values():
            samples.extend(result.samples)
            merged.total_events += result.total_events
            merged.total_accesses += result.total_accesses
        samples.sort(key=lambda sample: sample.access_index)
        merged.samples = samples
        return merged

    @property
    def thread_ids(self) -> List[int]:
        """Profiled thread ids, ascending."""
        return sorted(self.per_thread)


class _ThreadSamplerState:
    """Per-thread PMU context: countdown, RNG, and sample log."""

    def __init__(
        self,
        thread_id: int,
        period: PeriodDistribution,
        geometry: CacheGeometry,
        seed: int,
    ) -> None:
        self.thread_id = thread_id
        self.rng = random.Random(seed)
        self.period = period
        self.result = SamplingResult(
            mean_period=period.mean_period, geometry=geometry
        )
        self.countdown = period.next_period(self.rng)
        self.access_index = 0

    def observe(self, access: MemoryAccess, fired: bool) -> None:
        self.access_index += 1
        if not fired:
            return
        self.result.total_events += 1
        self.countdown -= 1
        if self.countdown <= 0:
            self.result.samples.append(
                AddressSample(
                    ip=access.ip,
                    address=access.address,
                    event_index=self.result.total_events - 1,
                    access_index=self.access_index - 1,
                )
            )
            self.countdown = self.period.next_period(self.rng)


class MultiThreadMonitor:
    """Profiles several threads with per-thread PMU state and shared or
    private L1s.

    Args:
        geometry: L1 geometry per core.
        period: Sampling-period distribution (shared configuration; each
            thread draws from its own RNG).
        event: Sampled event.
        seed: Base seed; thread ``t`` uses ``seed + t``.
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        period: Optional[PeriodDistribution] = None,
        event: PmuEvent = L1_MISS_EVENT,
        seed: int = 0,
    ) -> None:
        self.geometry = geometry
        self.period = period or UniformJitterPeriod(1212)
        self.event = event
        self.seed = seed

    def profile(
        self,
        threads: Dict[int, TraceStream],
        core_groups: Optional[Sequence[Sequence[int]]] = None,
        interleave_chunk: int = 4,
    ) -> MultiThreadProfile:
        """Profile every thread.

        Args:
            threads: thread id -> access stream.
            core_groups: Partition of thread ids onto cores; threads in the
                same group share one L1 (SMT siblings).  Unlisted threads
                run on private cores.  Default: all private.
            interleave_chunk: Accesses per turn when interleaving SMT
                siblings onto their shared L1.
        """
        groups = [list(group) for group in (core_groups or [])]
        grouped = {tid for group in groups for tid in group}
        for thread_id in threads:
            if thread_id not in grouped:
                groups.append([thread_id])
        for group in groups:
            for thread_id in group:
                if thread_id not in threads:
                    raise SamplingError(f"core group names unknown thread {thread_id}")

        profile = MultiThreadProfile()
        for group in groups:
            self._profile_core(group, threads, profile, interleave_chunk)
        return profile

    def _profile_core(
        self,
        group: Sequence[int],
        threads: Dict[int, TraceStream],
        profile: MultiThreadProfile,
        interleave_chunk: int,
    ) -> None:
        cache = SetAssociativeCache(self.geometry)
        states = {
            thread_id: _ThreadSamplerState(
                thread_id, self.period, self.geometry, self.seed + thread_id
            )
            for thread_id in group
        }
        def tag(thread_id: int) -> Iterable[MemoryAccess]:
            return (
                access._replace(thread_id=thread_id)
                for access in threads[thread_id]
            )

        if len(group) == 1:
            stream: Iterable[MemoryAccess] = tag(group[0])
        else:
            stream = interleave_round_robin(
                [tag(thread_id) for thread_id in group], chunk=interleave_chunk
            )
        for access in stream:
            outcome = cache.access(access.address, access.ip)
            fired = self.event.matches(access, outcome)
            states[access.thread_id].observe(access, fired)
        for thread_id, state in states.items():
            state.result.total_accesses = state.access_index
            profile.per_thread[thread_id] = state.result
