"""Monitor sessions: the libmonitor analogue.

Real CCProf preloads libmonitor into the target process to (a) set up PMU
sampling per thread and (b) intercept memory allocations for data-centric
attribution (paper §4).  A :class:`MonitorSession` bundles the same three
ingredients for a simulated run — sampler configuration, the workload's
virtual allocator, and its program image — and produces a
:class:`RawProfile`, the serialized artifact the offline analyzer consumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.cache.geometry import CacheGeometry
from repro.errors import SamplingError
from repro.pmu.periods import PeriodDistribution, UniformJitterPeriod
from repro.pmu.sampler import AddressSample, AddressSampler, SamplingResult
from repro.program.image import ProgramImage
from repro.trace.allocator import VirtualAllocator
from repro.trace.record import MemoryAccess


@dataclass
class RawProfile:
    """The on-disk artifact of one profiled run.

    Attributes:
        sampling: Sparse samples plus run totals.
        allocator: The allocation log captured during the run.
        image: Program image for code-centric attribution (may be None for
            fully anonymous binaries).
    """

    sampling: SamplingResult
    allocator: Optional[VirtualAllocator] = None
    image: Optional[ProgramImage] = None

    def dump_samples(self, path: Union[str, Path]) -> int:
        """Serialize samples to a JSON-lines log file.

        Mirrors CCProf's per-thread profile logs.  Returns the number of
        records written.
        """
        count = 0
        with open(path, "w", encoding="ascii") as handle:
            header = {
                "total_events": self.sampling.total_events,
                "total_accesses": self.sampling.total_accesses,
                "mean_period": self.sampling.mean_period,
                "num_sets": self.sampling.geometry.num_sets,
                "line_size": self.sampling.geometry.line_size,
                "ways": self.sampling.geometry.ways,
            }
            handle.write(json.dumps({"header": header}) + "\n")
            for sample in self.sampling.samples:
                handle.write(
                    json.dumps(
                        {
                            "ip": sample.ip,
                            "addr": sample.address,
                            "event": sample.event_index,
                            "access": sample.access_index,
                        }
                    )
                    + "\n"
                )
                count += 1
        return count

    @classmethod
    def load_samples(cls, path: Union[str, Path]) -> "RawProfile":
        """Read a JSON-lines log back into a profile (no image/allocator)."""
        with open(path, "r", encoding="ascii") as handle:
            first = handle.readline()
            if not first:
                raise SamplingError(f"{path}: empty profile log")
            try:
                header = json.loads(first).get("header")
            except json.JSONDecodeError as exc:
                raise SamplingError(f"{path}:1: malformed header: {exc}") from exc
            if header is None:
                raise SamplingError(f"{path}: missing header record")
            try:
                geometry = CacheGeometry(
                    line_size=header["line_size"],
                    num_sets=header["num_sets"],
                    ways=header["ways"],
                )
                sampling = SamplingResult(
                    total_events=header["total_events"],
                    total_accesses=header["total_accesses"],
                    mean_period=header["mean_period"],
                    geometry=geometry,
                )
            except KeyError as exc:
                raise SamplingError(f"{path}: header missing field {exc}") from exc
            for line_number, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    sampling.samples.append(
                        AddressSample(
                            ip=record["ip"],
                            address=record["addr"],
                            event_index=record["event"],
                            access_index=record["access"],
                        )
                    )
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise SamplingError(
                        f"{path}:{line_number}: malformed sample record: {exc}"
                    ) from exc
        return cls(sampling=sampling)


class MonitorSession:
    """Configure once, profile many traces.

    Args:
        geometry: L1 geometry to sample against.
        period: Sampling-period distribution (default: mean 1212 with
            uniform jitter — the paper's recommended setting).
        seed: Sampler RNG seed.
        policy: L1 replacement policy.
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        period: Optional[PeriodDistribution] = None,
        seed: int = 0,
        policy: str = "lru",
    ) -> None:
        self.geometry = geometry
        self.period = period or UniformJitterPeriod(1212)
        self.seed = seed
        self.policy = policy

    def profile(
        self,
        stream: Iterable[MemoryAccess],
        *,
        allocator: Optional[VirtualAllocator] = None,
        image: Optional[ProgramImage] = None,
    ) -> RawProfile:
        """Run one profiled execution over ``stream``."""
        sampler = AddressSampler(
            geometry=self.geometry,
            period=self.period,
            seed=self.seed,
            policy=self.policy,
        )
        return RawProfile(
            sampling=sampler.run(stream), allocator=allocator, image=image
        )
