"""Monitor sessions: the libmonitor analogue.

Real CCProf preloads libmonitor into the target process to (a) set up PMU
sampling per thread and (b) intercept memory allocations for data-centric
attribution (paper §4).  A :class:`MonitorSession` bundles the same three
ingredients for a simulated run — sampler configuration, the workload's
virtual allocator, and its program image — and produces a
:class:`RawProfile`, the serialized artifact the offline analyzer consumes.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.cache.geometry import CacheGeometry
from repro.engine import EngineBackend, resolve_backend
from repro.errors import SamplingError
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer
from repro.pmu.periods import PeriodDistribution, UniformJitterPeriod
from repro.pmu.sampler import AddressSample, AddressSampler, SamplingResult
from repro.program.image import ProgramImage
from repro.robustness.budget import SamplingBudget
from repro.robustness.retry import RetryPolicy, retry_with_backoff
from repro.trace.allocator import VirtualAllocator
from repro.trace.record import MemoryAccess


def _no_sleep(_delay: float) -> None:
    """Default backoff sleep: simulated runs should not wall-clock wait."""


@dataclass
class RawProfile:
    """The on-disk artifact of one profiled run.

    Attributes:
        sampling: Sparse samples plus run totals.
        allocator: The allocation log captured during the run.
        image: Program image for code-centric attribution (may be None for
            fully anonymous binaries).
        fault_report: Injection diagnostics when the sample stream was
            passed through a :class:`~repro.robustness.faults.FaultPipeline`
            (None for clean runs); typed loosely to keep this module free
            of a robustness dependency.
    """

    sampling: SamplingResult
    allocator: Optional[VirtualAllocator] = None
    image: Optional[ProgramImage] = None
    fault_report: Optional[object] = None

    def dump_samples(self, path: Union[str, Path]) -> int:
        """Serialize samples to a JSON-lines log file.

        Mirrors CCProf's per-thread profile logs.  Returns the number of
        records written.
        """
        count = 0
        with open(path, "w", encoding="ascii") as handle:
            header = {
                "total_events": self.sampling.total_events,
                "total_accesses": self.sampling.total_accesses,
                "mean_period": self.sampling.mean_period,
                "num_sets": self.sampling.geometry.num_sets,
                "line_size": self.sampling.geometry.line_size,
                "ways": self.sampling.geometry.ways,
                "truncated": self.sampling.truncated,
                "truncation_reason": self.sampling.truncation_reason,
            }
            handle.write(json.dumps({"header": header}) + "\n")
            for sample in self.sampling.samples:
                handle.write(
                    json.dumps(
                        {
                            "ip": sample.ip,
                            "addr": sample.address,
                            "event": sample.event_index,
                            "access": sample.access_index,
                        }
                    )
                    + "\n"
                )
                count += 1
        return count

    @classmethod
    def load_samples(cls, path: Union[str, Path]) -> "RawProfile":
        """Read a JSON-lines log back into a profile (no image/allocator)."""
        with open(path, "r", encoding="ascii") as handle:
            first = handle.readline()
            if not first:
                raise SamplingError(f"{path}: empty profile log")
            try:
                header = json.loads(first).get("header")
            except json.JSONDecodeError as exc:
                raise SamplingError(f"{path}:1: malformed header: {exc}") from exc
            if header is None:
                raise SamplingError(f"{path}: missing header record")
            try:
                geometry = CacheGeometry(
                    line_size=header["line_size"],
                    num_sets=header["num_sets"],
                    ways=header["ways"],
                )
                sampling = SamplingResult(
                    total_events=header["total_events"],
                    total_accesses=header["total_accesses"],
                    mean_period=header["mean_period"],
                    geometry=geometry,
                    truncated=bool(header.get("truncated", False)),
                    truncation_reason=header.get("truncation_reason"),
                )
            except KeyError as exc:
                raise SamplingError(f"{path}: header missing field {exc}") from exc
            for line_number, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    sampling.samples.append(
                        AddressSample(
                            ip=record["ip"],
                            address=record["addr"],
                            event_index=record["event"],
                            access_index=record["access"],
                        )
                    )
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise SamplingError(
                        f"{path}:{line_number}: malformed sample record: {exc}"
                    ) from exc
        return cls(sampling=sampling)


class MonitorSession:
    """Configure once, profile many traces.

    Args:
        geometry: L1 geometry to sample against.
        period: Sampling-period distribution (default: mean 1212 with
            uniform jitter — the paper's recommended setting).
        seed: Sampler RNG seed.
        policy: L1 replacement policy.
        attach_failure_rate: Probability that one simulated PMU attach
            attempt fails (``perf_event_open`` losing the race for a
            counter).  Attach is retried with jittered exponential backoff;
            the default 0.0 keeps clean runs deterministic and unchanged.
        retry_policy: Backoff schedule for flaky attach.
        budget: Watchdog limits forwarded to the sampler; exhaustion yields
            a truncated partial profile instead of a hang.
        sleep: Backoff sleep function.  Defaults to a no-op because the
            whole session is simulated time; pass ``time.sleep`` to model
            real waiting.
        engine: Engine backend to drive the trace with — a registered
            name (``"batched"``, the default; ``"scalar"``; ``"sharded"``)
            or an :class:`~repro.engine.EngineBackend` instance.  All
            registered backends produce bit-identical profiles.
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        period: Optional[PeriodDistribution] = None,
        seed: int = 0,
        policy: str = "lru",
        attach_failure_rate: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
        budget: Optional[SamplingBudget] = None,
        sleep: Callable[[float], None] = _no_sleep,
        engine: Union[str, EngineBackend] = "batched",
    ) -> None:
        if not 0.0 <= attach_failure_rate <= 1.0:
            raise SamplingError(
                f"attach_failure_rate must be in [0, 1], got {attach_failure_rate}"
            )
        self.backend = resolve_backend(engine)
        self.engine = self.backend.name
        self.geometry = geometry
        self.period = period or UniformJitterPeriod(1212)
        self.seed = seed
        self.policy = policy
        self.attach_failure_rate = attach_failure_rate
        self.retry_policy = retry_policy or RetryPolicy()
        self.budget = budget
        self.attach_attempts = 0
        self._sleep = sleep
        # Dedicated stream so attach flakiness never perturbs sampling.
        self._attach_rng = random.Random((seed << 1) ^ 0x5EED)

    def attach(self) -> None:
        """One simulated PMU attach attempt (may raise :class:`SamplingError`).

        Models the transient failure modes of ``perf_event_open`` + ring
        buffer mmap: with probability :attr:`attach_failure_rate` the
        counter is busy and the attempt fails.
        """
        self.attach_attempts += 1
        if self._attach_rng.random() < self.attach_failure_rate:
            raise SamplingError(
                "simulated PMU attach failure: counter busy "
                f"(attempt {self.attach_attempts})"
            )

    def profile(
        self,
        stream: Iterable[MemoryAccess],
        *,
        allocator: Optional[VirtualAllocator] = None,
        image: Optional[ProgramImage] = None,
    ) -> RawProfile:
        """Run one profiled execution over ``stream``.

        Raises:
            RetryExhaustedError: When simulated attach failed on every
                allowed attempt.
        """
        registry = get_registry()
        if self.attach_failure_rate > 0.0:
            before = self.attach_attempts
            retry_with_backoff(
                self.attach,
                policy=self.retry_policy,
                retry_on=(SamplingError,),
                rng=self._attach_rng,
                sleep=self._sleep,
                on_retry=lambda _attempt, _error, _delay: registry.counter(
                    "pmu.attach_retries"
                ).inc(),
            )
            registry.counter("pmu.attach_attempts").inc(
                self.attach_attempts - before
            )
        sampler = AddressSampler(
            geometry=self.geometry,
            period=self.period,
            seed=self.seed,
            policy=self.policy,
            budget=self.budget,
        )
        with get_tracer().span("sample", engine=self.engine):
            sampling = self.backend.sample(sampler, stream)
        return RawProfile(sampling=sampling, allocator=allocator, image=image)
