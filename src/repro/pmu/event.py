"""Sampleable PMU events.

An event is a predicate over (memory access, cache outcome).  CCProf uses
``MEM_LOAD_UOPS_RETIRED:L1_MISS`` — retired load micro-ops that missed the
L1 data cache — which PEBS on Haswell-and-later can sample with the
effective address attached (paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.cache.set_assoc import AccessResult, BatchResult
from repro.trace.batch import TraceBatch
from repro.trace.record import MemoryAccess

#: Predicate deciding whether one (access, L1 outcome) pair fires the event.
EventPredicate = Callable[[MemoryAccess, AccessResult], bool]

#: Columnar predicate: (batch, batched outcome) -> boolean event mask.
BatchEventPredicate = Callable[[TraceBatch, BatchResult], np.ndarray]


@dataclass(frozen=True)
class PmuEvent:
    """One hardware event the sampler can be armed with.

    Attributes:
        name: Canonical event string (Intel SDM naming).
        predicate: Fires the counter for a given access/outcome pair.
        precise: Whether PEBS can attach an effective address (all the
            events we model are precise).
        batch_predicate: Optional vectorized form of ``predicate``; when
            absent, batched sampling falls back to evaluating the scalar
            predicate per record.
    """

    name: str
    predicate: EventPredicate
    precise: bool = True
    batch_predicate: Optional[BatchEventPredicate] = None

    def matches(self, access: MemoryAccess, result: AccessResult) -> bool:
        """Whether this access/outcome increments the event counter."""
        return self.predicate(access, result)

    def matches_batch(self, batch: TraceBatch, result: BatchResult) -> np.ndarray:
        """Boolean event mask over a whole batch.

        Uses the vectorized predicate when one is attached; otherwise
        evaluates the scalar predicate record by record (slow but exact),
        so user-defined events need no batch form to stay correct.
        """
        if self.batch_predicate is not None:
            return self.batch_predicate(batch, result)
        results = result.scalar_results()
        return np.fromiter(
            (
                self.predicate(access, outcome)
                for access, outcome in zip(batch.to_accesses(), results)
            ),
            dtype=bool,
            count=len(results),
        )


def _is_l1_load_miss(access: MemoryAccess, result: AccessResult) -> bool:
    return access.is_load and result.miss


def _is_any_load(access: MemoryAccess, result: AccessResult) -> bool:
    return access.is_load


def _is_l1_load_hit(access: MemoryAccess, result: AccessResult) -> bool:
    return access.is_load and result.hit


def _batch_l1_load_miss(batch: TraceBatch, result: BatchResult) -> np.ndarray:
    return batch.is_load & result.miss


def _batch_any_load(batch: TraceBatch, result: BatchResult) -> np.ndarray:
    return batch.is_load


def _batch_l1_load_hit(batch: TraceBatch, result: BatchResult) -> np.ndarray:
    return batch.is_load & result.hit


#: The event CCProf samples: retired loads that missed L1 (paper §4).
L1_MISS_EVENT = PmuEvent(
    "MEM_LOAD_UOPS_RETIRED:L1_MISS", _is_l1_load_miss,
    batch_predicate=_batch_l1_load_miss,
)

#: All retired loads — useful for miss-ratio style baselines.
ALL_LOADS_EVENT = PmuEvent(
    "MEM_UOPS_RETIRED:ALL_LOADS", _is_any_load,
    batch_predicate=_batch_any_load,
)

#: Retired loads that hit L1 — complements the miss event in tests.
L1_HIT_EVENT = PmuEvent(
    "MEM_LOAD_UOPS_RETIRED:L1_HIT", _is_l1_load_hit,
    batch_predicate=_batch_l1_load_hit,
)
