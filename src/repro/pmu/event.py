"""Sampleable PMU events.

An event is a predicate over (memory access, cache outcome).  CCProf uses
``MEM_LOAD_UOPS_RETIRED:L1_MISS`` — retired load micro-ops that missed the
L1 data cache — which PEBS on Haswell-and-later can sample with the
effective address attached (paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cache.set_assoc import AccessResult
from repro.trace.record import MemoryAccess

#: Predicate deciding whether one (access, L1 outcome) pair fires the event.
EventPredicate = Callable[[MemoryAccess, AccessResult], bool]


@dataclass(frozen=True)
class PmuEvent:
    """One hardware event the sampler can be armed with.

    Attributes:
        name: Canonical event string (Intel SDM naming).
        predicate: Fires the counter for a given access/outcome pair.
        precise: Whether PEBS can attach an effective address (all the
            events we model are precise).
    """

    name: str
    predicate: EventPredicate
    precise: bool = True

    def matches(self, access: MemoryAccess, result: AccessResult) -> bool:
        """Whether this access/outcome increments the event counter."""
        return self.predicate(access, result)


def _is_l1_load_miss(access: MemoryAccess, result: AccessResult) -> bool:
    return access.is_load and result.miss


def _is_any_load(access: MemoryAccess, result: AccessResult) -> bool:
    return access.is_load


def _is_l1_load_hit(access: MemoryAccess, result: AccessResult) -> bool:
    return access.is_load and result.hit


#: The event CCProf samples: retired loads that missed L1 (paper §4).
L1_MISS_EVENT = PmuEvent("MEM_LOAD_UOPS_RETIRED:L1_MISS", _is_l1_load_miss)

#: All retired loads — useful for miss-ratio style baselines.
ALL_LOADS_EVENT = PmuEvent("MEM_UOPS_RETIRED:ALL_LOADS", _is_any_load)

#: Retired loads that hit L1 — complements the miss event in tests.
L1_HIT_EVENT = PmuEvent("MEM_LOAD_UOPS_RETIRED:L1_HIT", _is_l1_load_hit)
