"""Runtime-overhead models.

The paper's Figure 8 and Table 2 report runtime overhead factors:

- CCProf sampling: 9.3x at mean sampling period 171, 2.9x at 1212 (Fig. 8),
  and a 1.37x median for whole-application profiling (Table 2).
- Trace-driven simulation: ~1000x average, 264x median for target loops.

Those numbers come from real hardware runs we cannot perform, so this module
provides a first-order analytic model — overhead grows with the number of
PMU interrupts taken, i.e. with the event rate divided by the sampling
period — *calibrated to the paper's two published (period, overhead)
points*.  The Table 2 benchmark additionally measures the real wall-clock
ratio of our own sampling vs. full simulation pipelines, which reproduces
the shape (sampling is orders of magnitude cheaper) on this substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SamplingError

#: Average slowdown of trace-driven simulation reported in the paper (§5.3).
SIMULATION_SLOWDOWN = 1000.0

#: Median per-loop simulation slowdown across the six case studies (§5.3).
SIMULATION_SLOWDOWN_MEDIAN = 264.0

#: The paper's calibration points: mean sampling period -> overhead factor.
PAPER_CALIBRATION = ((171.0, 9.3), (1212.0, 2.9))

#: Event rate implied by the calibration (events per unit work); the paper's
#: training loops are miss-heavy, so the default assumes the same regime.
_REFERENCE_EVENT_RATE = 1.0


@dataclass(frozen=True)
class OverheadModel:
    """Overhead = 1 + fixed + handler_cost * interrupts_per_unit_work.

    ``interrupts_per_unit_work`` is ``event_rate / period``: each PMU
    interrupt costs a fixed handler time (register dump, unwinding, log
    write), and the baseline does one unit of work per event at the
    reference rate.

    Attributes:
        fixed: Constant fraction added by monitoring infrastructure
            (libmonitor preload, counter multiplexing).
        handler_cost: Handler cost expressed in units of per-event work.
    """

    fixed: float
    handler_cost: float

    @classmethod
    def calibrated(cls) -> "OverheadModel":
        """Solve the two-parameter model from the paper's two points.

        With points (p1, o1) and (p2, o2):
            o = 1 + fixed + handler_cost / p
        """
        (p1, o1), (p2, o2) = PAPER_CALIBRATION
        handler_cost = (o1 - o2) / (1.0 / p1 - 1.0 / p2)
        fixed = o2 - 1.0 - handler_cost / p2
        return cls(fixed=fixed, handler_cost=handler_cost)

    def overhead_at_period(
        self, mean_period: float, event_rate: float = _REFERENCE_EVENT_RATE
    ) -> float:
        """Overhead factor at a mean sampling period.

        Args:
            mean_period: Mean events between samples.
            event_rate: Qualifying events per unit of baseline work,
                relative to the calibration workloads (1.0 = same miss
                intensity; 0.1 = ten times fewer misses, so ten times
                fewer interrupts and proportionally less overhead).
        """
        if mean_period <= 0:
            raise SamplingError(f"mean period must be positive: {mean_period}")
        if event_rate < 0:
            raise SamplingError(f"event rate must be non-negative: {event_rate}")
        scaled_fixed = self.fixed * min(event_rate, 1.0)
        return 1.0 + scaled_fixed + self.handler_cost * event_rate / mean_period

    def overhead_for_run(
        self, total_events: int, sample_count: int, total_accesses: int
    ) -> float:
        """Overhead factor from actual run counts.

        Uses the same calibration but with the run's own interrupt density:
        ``sample_count`` interrupts amortized over ``total_accesses`` units
        of work.
        """
        if total_accesses <= 0:
            raise SamplingError("run had no accesses")
        event_rate = total_events / total_accesses
        interrupts_per_work = sample_count / total_accesses
        scaled_fixed = self.fixed * min(event_rate, 1.0)
        # handler_cost is per-interrupt in units of per-event work at the
        # reference rate; re-express per access.
        return 1.0 + scaled_fixed + self.handler_cost * interrupts_per_work

    def period_for_overhead(
        self, overhead: float, event_rate: float = _REFERENCE_EVENT_RATE
    ) -> float:
        """Inverse model: the period that lands at a target overhead."""
        scaled_fixed = self.fixed * min(event_rate, 1.0)
        headroom = overhead - 1.0 - scaled_fixed
        if headroom <= 0:
            raise SamplingError(
                f"target overhead {overhead} is below the fixed floor "
                f"{1.0 + scaled_fixed:.3f}"
            )
        return self.handler_cost * event_rate / headroom


def simulation_overhead(loop_fraction: float, slowdown: float = SIMULATION_SLOWDOWN_MEDIAN) -> float:
    """Model the overhead of selectively simulating a loop.

    The paper only traces/simulates hot loops; the rest of the program runs
    natively.  If the loop is ``loop_fraction`` of baseline runtime and
    tracing slows it by ``slowdown``:

        overhead = (1 - loop_fraction) + loop_fraction * slowdown
    """
    if not 0.0 <= loop_fraction <= 1.0:
        raise SamplingError(f"loop fraction must be in [0, 1]: {loop_fraction}")
    return (1.0 - loop_fraction) + loop_fraction * slowdown
