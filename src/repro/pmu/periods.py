"""Sampling-period distributions.

"Upon each sample event, CCProf's sample handler randomly sets the next
sampling period based on given probability distribution" (paper §4).
Randomizing the period avoids lock-step aliasing between the sampler and
periodic access patterns — precisely the patterns conflict misses produce —
so the default here is a uniform jitter around the mean, with fixed and
geometric (memoryless) alternatives for the ablation study.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import SamplingError


class PeriodDistribution(ABC):
    """Distribution of the number of events between consecutive samples."""

    @property
    @abstractmethod
    def mean_period(self) -> float:
        """Expected events per sample."""

    @abstractmethod
    def next_period(self, rng: random.Random) -> int:
        """Draw the countdown until the next sample (>= 1)."""

    def next_periods(self, rng: random.Random, count: int) -> np.ndarray:
        """Draw ``count`` consecutive periods as an int64 column.

        The default draws sequentially through :meth:`next_period`, so the
        RNG stream (and hence reproducibility against scalar runs) is
        preserved; distributions that do not consume the RNG may override
        with a truly vectorized draw.
        """
        if count < 0:
            raise SamplingError(f"count must be non-negative, got {count}")
        return np.fromiter(
            (self.next_period(rng) for _ in range(count)),
            dtype=np.int64,
            count=count,
        )


class FixedPeriod(PeriodDistribution):
    """Deterministic period: sample every ``period``-th event.

    Vulnerable to aliasing with periodic miss patterns; kept for the
    ablation that demonstrates why the paper randomizes.
    """

    def __init__(self, period: int) -> None:
        if period < 1:
            raise SamplingError(f"period must be >= 1, got {period}")
        self.period = period

    @property
    def mean_period(self) -> float:
        return float(self.period)

    def next_period(self, rng: random.Random) -> int:
        return self.period

    def next_periods(self, rng: random.Random, count: int) -> np.ndarray:
        if count < 0:
            raise SamplingError(f"count must be non-negative, got {count}")
        return np.full(count, self.period, dtype=np.int64)

    def __repr__(self) -> str:
        return f"FixedPeriod({self.period})"


class UniformJitterPeriod(PeriodDistribution):
    """Uniform draw in ``[mean*(1-jitter), mean*(1+jitter)]`` (default).

    Matches the common perf/PEBS practice of jittering the reset value.
    """

    def __init__(self, mean: int, jitter: float = 0.25) -> None:
        if mean < 1:
            raise SamplingError(f"mean period must be >= 1, got {mean}")
        if not 0.0 <= jitter < 1.0:
            raise SamplingError(f"jitter must be in [0, 1), got {jitter}")
        self.mean = mean
        self.jitter = jitter
        self._low = max(1, int(round(mean * (1.0 - jitter))))
        self._high = max(self._low, int(round(mean * (1.0 + jitter))))

    @property
    def mean_period(self) -> float:
        return (self._low + self._high) / 2.0

    def next_period(self, rng: random.Random) -> int:
        return rng.randint(self._low, self._high)

    def __repr__(self) -> str:
        return f"UniformJitterPeriod(mean={self.mean}, jitter={self.jitter})"


class GeometricPeriod(PeriodDistribution):
    """Geometric inter-sample gap: each event sampled independently.

    The memoryless choice — equivalent to Bernoulli sampling of events with
    probability ``1/mean`` — gives the cleanest statistical guarantees for
    the RCD approximation analysis.
    """

    def __init__(self, mean: int) -> None:
        if mean < 1:
            raise SamplingError(f"mean period must be >= 1, got {mean}")
        self.mean = mean
        self._probability = 1.0 / mean

    @property
    def mean_period(self) -> float:
        return float(self.mean)

    def next_period(self, rng: random.Random) -> int:
        # Inverse-CDF draw of a geometric distribution with support {1, 2, ...}.
        u = rng.random()
        if self._probability >= 1.0:
            return 1
        gap = int(math.ceil(math.log1p(-u) / math.log1p(-self._probability)))
        return max(1, gap)

    def __repr__(self) -> str:
        return f"GeometricPeriod(mean={self.mean})"


def make_period_distribution(kind: str, mean: int, **kwargs) -> PeriodDistribution:
    """Factory by name: ``fixed``, ``uniform``, or ``geometric``."""
    kind = kind.lower()
    if kind == "fixed":
        return FixedPeriod(mean)
    if kind == "uniform":
        return UniformJitterPeriod(mean, **kwargs)
    if kind == "geometric":
        return GeometricPeriod(mean)
    raise SamplingError(f"unknown period distribution {kind!r}")
