"""PMU / PEBS address-sampling simulation.

Real CCProf programs the PMU with ``MEM_LOAD_UOPS_RETIRED:L1_MISS`` and a
randomized sampling period; each sample delivers the instruction pointer and
effective address of one L1 load miss (paper §2.2, §4).  No such hardware is
reachable from this environment, so this package reproduces the *observation
channel*: a sampler that watches the simulated L1's miss stream and emits
sparse, lossy (ip, address) samples with exactly the statistics of
event-based sampling.

- :mod:`repro.pmu.event` — sampleable event definitions.
- :mod:`repro.pmu.periods` — sampling-period distributions (the paper
  randomizes the next period per sample).
- :mod:`repro.pmu.sampler` — the address sampler itself.
- :mod:`repro.pmu.monitor` — a libmonitor-like session bundling sampler +
  allocator + program image into one profile.
- :mod:`repro.pmu.overhead` — analytic runtime-overhead model calibrated to
  the paper's reported (period, overhead) points.
"""

from repro.pmu.event import PmuEvent, L1_MISS_EVENT, ALL_LOADS_EVENT
from repro.pmu.periods import (
    FixedPeriod,
    GeometricPeriod,
    PeriodDistribution,
    UniformJitterPeriod,
    make_period_distribution,
)
from repro.pmu.sampler import AddressSample, AddressSampler, SamplingResult
from repro.pmu.monitor import MonitorSession, RawProfile
from repro.pmu.multithread import MultiThreadMonitor, MultiThreadProfile
from repro.pmu.calibration import CalibrationFit, fit_overhead_model
from repro.pmu.overhead import OverheadModel, SIMULATION_SLOWDOWN

__all__ = [
    "PmuEvent",
    "L1_MISS_EVENT",
    "ALL_LOADS_EVENT",
    "PeriodDistribution",
    "FixedPeriod",
    "UniformJitterPeriod",
    "GeometricPeriod",
    "make_period_distribution",
    "AddressSample",
    "AddressSampler",
    "SamplingResult",
    "MonitorSession",
    "RawProfile",
    "MultiThreadMonitor",
    "MultiThreadProfile",
    "OverheadModel",
    "SIMULATION_SLOWDOWN",
    "CalibrationFit",
    "fit_overhead_model",
]
