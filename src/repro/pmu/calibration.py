"""Overhead-model calibration from measurements.

:class:`~repro.pmu.overhead.OverheadModel` ships calibrated to the paper's
two published (period, overhead) points.  Users profiling on their own
machines can measure overhead at a few sampling periods and fit the same
two-parameter model — ``overhead = 1 + fixed + handler_cost / period`` —
by least squares in the transformed variable ``x = 1/period``, which makes
the fit linear and closed-form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.pmu.overhead import OverheadModel


@dataclass(frozen=True)
class CalibrationFit:
    """Result of fitting the overhead model to observations.

    Attributes:
        model: The fitted model.
        residuals: Per-observation (observed - predicted) overhead.
        r_squared: Coefficient of determination in overhead space.
    """

    model: OverheadModel
    residuals: Tuple[float, ...]
    r_squared: float

    @property
    def max_abs_residual(self) -> float:
        """Worst-case absolute prediction error over the fit points."""
        return max((abs(r) for r in self.residuals), default=0.0)


def fit_overhead_model(
    observations: Sequence[Tuple[float, float]],
) -> CalibrationFit:
    """Least-squares fit of the two-parameter overhead model.

    Args:
        observations: (mean sampling period, measured overhead factor)
            pairs; at least two with distinct periods.

    Raises:
        ModelError: Too few / degenerate observations, or a fit implying
            negative handler cost (measurement noise exceeded signal).
    """
    if len(observations) < 2:
        raise ModelError(f"need >= 2 observations, got {len(observations)}")
    periods = np.asarray([p for p, _ in observations], dtype=float)
    overheads = np.asarray([o for _, o in observations], dtype=float)
    if np.any(periods <= 0):
        raise ModelError("periods must be positive")
    if np.any(overheads < 1.0):
        raise ModelError("overhead factors below 1.0 are not physical")
    if len(set(periods.tolist())) < 2:
        raise ModelError("observations need at least two distinct periods")

    # overhead - 1 = fixed + handler_cost * (1/period): linear regression.
    x = 1.0 / periods
    y = overheads - 1.0
    design = np.column_stack([np.ones_like(x), x])
    coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
    fixed, handler_cost = float(coefficients[0]), float(coefficients[1])
    if handler_cost < 0:
        raise ModelError(
            "fit implies negative per-sample cost; overheads do not decrease "
            "with the period — check the measurements"
        )
    fixed = max(fixed, 0.0)

    model = OverheadModel(fixed=fixed, handler_cost=handler_cost)
    predicted = np.array([model.overhead_at_period(p) for p in periods])
    residuals = overheads - predicted
    total = float(np.sum((overheads - overheads.mean()) ** 2))
    if total > 0:
        r_squared = 1.0 - float(np.sum(residuals**2)) / total
    else:
        r_squared = 1.0
    return CalibrationFit(
        model=model,
        residuals=tuple(float(r) for r in residuals),
        r_squared=r_squared,
    )


def sweep_periods_for_budget(
    model: OverheadModel,
    overhead_budgets: Sequence[float],
    event_rate: float = 1.0,
) -> List[Tuple[float, float]]:
    """(budget, period) pairs: the coarsest period fitting each budget.

    The practical question Table 2 answers per application: "how fine can
    I sample and stay under N x runtime?".
    """
    pairs: List[Tuple[float, float]] = []
    for budget in overhead_budgets:
        pairs.append((budget, model.period_for_overhead(budget, event_rate)))
    return pairs
