"""The PEBS-like address sampler.

Drives a memory trace through the simulated L1, counts qualifying events
(by default L1 load misses), and emits a sample — instruction pointer plus
effective address — every time the randomized countdown expires.  This is
the lossy observation channel all of CCProf's inference is built to cope
with: between two samples, an unknown number of misses happened unseen.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, NamedTuple, Optional, Union

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.obs.metrics import get_registry
from repro.pmu.event import L1_MISS_EVENT, PmuEvent
from repro.pmu.periods import PeriodDistribution, UniformJitterPeriod
from repro.robustness.budget import SamplingBudget
from repro.trace.batch import DEFAULT_BATCH_SIZE, TraceBatch, as_batches
from repro.trace.record import MemoryAccess

#: Anything the batched engines accept as a trace: a single batch, an
#: iterable of batches, or a scalar access stream.
TraceLike = Union[TraceBatch, Iterable]


class AddressSample(NamedTuple):
    """One PEBS record.

    Attributes:
        ip: Instruction pointer of the sampled instruction.
        address: Effective data address.
        event_index: Ordinal of this event among all qualifying events
            (the sampler knows it; offline analysis must not use it other
            than for diagnostics — real PEBS does not report it).
        access_index: Ordinal of the access within the whole trace.
    """

    ip: int
    address: int
    event_index: int
    access_index: int


@dataclass
class SamplingResult:
    """Everything one profiling run produces.

    Attributes:
        samples: The sparse PEBS records, in time order.
        total_events: Count of qualifying events (e.g. all L1 load misses).
        total_accesses: Length of the driven trace.
        mean_period: Mean of the configured period distribution.
        geometry: L1 geometry the run used (needed for set attribution).
        truncated: True when a watchdog budget stopped the run before the
            trace was exhausted (the profile is a valid prefix).
        truncation_reason: Which budget fired (None when not truncated).
        cache_stats: Statistics of the simulated L1 the run drove — the
            same numbers a standalone simulation of the consumed trace
            prefix would produce, attached so downstream consumers (the
            CLI compare path, manifests) need not re-simulate.
    """

    samples: List[AddressSample] = field(default_factory=list)
    total_events: int = 0
    total_accesses: int = 0
    mean_period: float = 0.0
    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    truncated: bool = False
    truncation_reason: Optional[str] = None
    cache_stats: Optional[CacheStats] = None

    @property
    def sample_count(self) -> int:
        """Number of samples captured."""
        return len(self.samples)

    @property
    def effective_period(self) -> float:
        """Observed events per sample (diagnostic)."""
        if not self.samples:
            return float("inf")
        return self.total_events / len(self.samples)

    @property
    def event_rate(self) -> float:
        """Qualifying events per access (e.g. the L1 load-miss rate)."""
        if not self.total_accesses:
            return 0.0
        return self.total_events / self.total_accesses


class AddressSampler:
    """Event-based address sampling over a simulated L1.

    Args:
        geometry: L1 cache geometry.
        period: Sampling-period distribution; defaults to a uniform jitter
            around the paper's recommended mean period of 1212.
        event: Which event to sample (default L1 load misses).
        seed: RNG seed — runs are reproducible.
        policy: L1 replacement policy.
        rng: Explicit period RNG; overrides ``seed`` when given.  A fresh
            clone is *not* taken per run in this mode, so pass a dedicated
            instance when determinism across repeated runs matters.
        budget: Watchdog limits; when a limit fires the run stops early and
            the result is flagged ``truncated``.
    """

    def __init__(
        self,
        geometry: CacheGeometry = CacheGeometry(),
        period: Optional[PeriodDistribution] = None,
        event: PmuEvent = L1_MISS_EVENT,
        seed: int = 0,
        policy: str = "lru",
        rng: Optional[random.Random] = None,
        budget: Optional[SamplingBudget] = None,
    ) -> None:
        self.geometry = geometry
        self.period = period or UniformJitterPeriod(1212)
        self.event = event
        self.policy = policy
        self.budget = budget
        self._seed = seed
        self._rng = rng

    def _fresh_rng(self) -> random.Random:
        """Per-run RNG: the explicit instance, or a fresh seeded one."""
        return self._rng if self._rng is not None else random.Random(self._seed)

    def _finish_run(
        self, result: SamplingResult, cache: SetAssociativeCache
    ) -> SamplingResult:
        """Attach the run's cache stats and charge per-run obs aggregates.

        Called once per run by every engine, so scalar and batched runs of
        the same trace record identical counter totals.
        """
        result.cache_stats = cache.stats
        cache.flush_metrics()
        registry = get_registry()
        if registry.enabled:
            registry.counter("pmu.runs").inc()
            registry.counter("pmu.samples_emitted").inc(result.sample_count)
            registry.counter("pmu.events").inc(result.total_events)
            registry.counter("pmu.accesses").inc(result.total_accesses)
            if result.truncated:
                registry.counter("pmu.truncated_runs").inc()
        return result

    def run(
        self,
        stream: Iterable[MemoryAccess],
        budget: Optional[SamplingBudget] = None,
    ) -> SamplingResult:
        """Profile a trace; returns the sparse sample record.

        A fresh cache and RNG are created per run so repeated runs with the
        same seed are bit-identical.  A ``budget`` (argument or constructor
        default) bounds the run; exhaustion yields a truncated-but-valid
        prefix profile rather than an error.
        """
        rng = self._fresh_rng()
        cache = SetAssociativeCache(self.geometry, policy=self.policy)
        result = SamplingResult(
            mean_period=self.period.mean_period, geometry=self.geometry
        )
        budget = budget or self.budget
        tracker = (
            budget.tracker() if budget is not None and not budget.unlimited
            else None
        )
        countdown = self.period.next_period(rng)
        event_matches = self.event.matches
        cache_access = cache.access
        access_index = 0
        event_index = 0
        for access in stream:
            outcome = cache_access(access.address, access.ip)
            if event_matches(access, outcome):
                event_index += 1
                countdown -= 1
                if countdown <= 0:
                    result.samples.append(
                        AddressSample(
                            ip=access.ip,
                            address=access.address,
                            event_index=event_index - 1,
                            access_index=access_index,
                        )
                    )
                    countdown = self.period.next_period(rng)
            access_index += 1
            if tracker is not None:
                reason = tracker.exhausted_after(
                    access_index, event_index, len(result.samples)
                )
                if reason is not None:
                    result.truncated = True
                    result.truncation_reason = reason
                    break
        result.total_events = event_index
        result.total_accesses = access_index
        return self._finish_run(result, cache)

    def run_batched(
        self,
        trace: TraceLike,
        budget: Optional[SamplingBudget] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        cache=None,
    ) -> SamplingResult:
        """Vectorized :meth:`run` over columnar trace batches.

        Accepts a :class:`~repro.trace.batch.TraceBatch`, an iterable of
        batches, or a scalar access stream (converted chunk-wise).  The
        result is access-for-access identical to :meth:`run` on the same
        trace and seed: the cache simulation, event mask, countdown walk,
        and RNG draw sequence all reproduce the scalar reference, and the
        deterministic budget limits (accesses/events/samples) truncate at
        the exact same record.  Only the wall-clock ``deadline_seconds``
        budget differs: it is checked once per batch instead of per
        access, which can only matter for a limit that is inherently
        non-deterministic anyway.

        ``cache`` injects an alternative simulation substrate — anything
        with the ``access_batch`` / ``stats`` / ``flush_metrics`` surface
        of :class:`SetAssociativeCache`.  The sharded engine passes its
        multiprocess :class:`~repro.engine.sharded.ShardedCacheSimulator`
        here, reusing this method's event mask, countdown walk, and
        budget logic unchanged (which is what makes it bit-identical).
        The caller owns the injected cache's lifecycle.
        """
        rng = self._fresh_rng()
        if cache is None:
            cache = SetAssociativeCache(self.geometry, policy=self.policy)
        result = SamplingResult(
            mean_period=self.period.mean_period, geometry=self.geometry
        )
        budget = budget or self.budget
        active = budget is not None and not budget.unlimited
        tracker = budget.tracker() if active else None
        max_accesses = budget.max_accesses if active else None
        max_events = budget.max_events if active else None
        max_samples = budget.max_samples if active else None
        has_deadline = active and budget.deadline_seconds is not None

        samples = result.samples
        next_period = self.period.next_period
        countdown = next_period(rng)
        access_index = 0
        event_index = 0
        for batch in as_batches(trace, batch_size):
            count = len(batch)
            if not count:
                continue
            outcome = cache.access_batch(batch)
            mask = np.asarray(self.event.matches_batch(batch, outcome), dtype=bool)
            event_positions = np.flatnonzero(mask)

            # Deterministic budgets map to a local cut: the 0-based batch
            # position of the access after which the scalar loop truncates.
            cut: Optional[int] = None
            if (
                max_accesses is not None
                and access_index + count >= max_accesses
            ):
                cut = max_accesses - access_index - 1
            if max_events is not None:
                needed = max_events - event_index
                if needed <= event_positions.size:
                    event_cut = int(event_positions[needed - 1])
                    if cut is None or event_cut < cut:
                        cut = event_cut
            eligible = (
                event_positions if cut is None
                else event_positions[event_positions <= cut]
            )

            # Countdown walk: the j-th eligible event of this batch fires a
            # sample when the running countdown lands on it.  One RNG draw
            # per captured sample — the same draw sequence as the scalar
            # loop, including the draw that precedes a sample-budget stop.
            ips = batch.ip
            addresses = batch.address
            total_eligible = int(eligible.size)
            pointer = countdown - 1
            sample_cut: Optional[int] = None
            while pointer < total_eligible:
                position = int(eligible[pointer])
                samples.append(
                    AddressSample(
                        ip=int(ips[position]),
                        address=int(addresses[position]),
                        event_index=event_index + pointer,
                        access_index=access_index + position,
                    )
                )
                period = next_period(rng)
                if max_samples is not None and len(samples) >= max_samples:
                    sample_cut = position
                    break
                pointer += period

            if sample_cut is not None and (cut is None or sample_cut <= cut):
                cut = sample_cut
            if cut is not None:
                access_index += cut + 1
                event_index += int(np.count_nonzero(event_positions <= cut))
                result.truncated = True
                result.truncation_reason = tracker.exhausted_now(
                    access_index, event_index, len(samples)
                )
                break
            countdown = pointer - total_eligible + 1
            access_index += count
            event_index += int(event_positions.size)
            if has_deadline:
                reason = tracker.exhausted_now(
                    access_index, event_index, len(samples)
                )
                if reason is not None:
                    result.truncated = True
                    result.truncation_reason = reason
                    break
        result.total_events = event_index
        result.total_accesses = access_index
        return self._finish_run(result, cache)

    def run_with_trace_of_events(self, stream: Iterable[MemoryAccess]) -> tuple:
        """Profile while also recording the *full* event stream.

        Returns:
            (SamplingResult, list of (ip, address) for every qualifying
            event).  This is the synthesized-simulator mode of §5.2: the
            full stream gives ground-truth RCDs, the samples give CCProf's
            approximation, from the *same* execution.
        """
        rng = self._fresh_rng()
        cache = SetAssociativeCache(self.geometry, policy=self.policy)
        result = SamplingResult(
            mean_period=self.period.mean_period, geometry=self.geometry
        )
        events: List[AddressSample] = []
        countdown = self.period.next_period(rng)
        access_index = 0
        event_index = 0
        for access in stream:
            outcome = cache.access(access.address, access.ip)
            if self.event.matches(access, outcome):
                record = AddressSample(
                    ip=access.ip,
                    address=access.address,
                    event_index=event_index,
                    access_index=access_index,
                )
                events.append(record)
                event_index += 1
                countdown -= 1
                if countdown <= 0:
                    result.samples.append(record)
                    countdown = self.period.next_period(rng)
            access_index += 1
        result.total_events = event_index
        result.total_accesses = access_index
        return self._finish_run(result, cache), events

    def run_with_trace_of_events_batched(
        self, trace: TraceLike, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> tuple:
        """Vectorized :meth:`run_with_trace_of_events`.

        Same contract and bit-identical output on the same trace/seed:
        (SamplingResult, list of every qualifying event).
        """
        rng = self._fresh_rng()
        cache = SetAssociativeCache(self.geometry, policy=self.policy)
        result = SamplingResult(
            mean_period=self.period.mean_period, geometry=self.geometry
        )
        events: List[AddressSample] = []
        next_period = self.period.next_period
        countdown = next_period(rng)
        access_index = 0
        for batch in as_batches(trace, batch_size):
            count = len(batch)
            if not count:
                continue
            outcome = cache.access_batch(batch)
            mask = np.asarray(self.event.matches_batch(batch, outcome), dtype=bool)
            event_positions = np.flatnonzero(mask)
            base_ordinal = len(events)
            batch_events = [
                AddressSample(
                    ip=ip,
                    address=address,
                    event_index=base_ordinal + ordinal,
                    access_index=access_index + position,
                )
                for ordinal, (ip, address, position) in enumerate(
                    zip(
                        batch.ip[event_positions].tolist(),
                        batch.address[event_positions].tolist(),
                        event_positions.tolist(),
                    )
                )
            ]
            events.extend(batch_events)
            total = len(batch_events)
            pointer = countdown - 1
            while pointer < total:
                result.samples.append(batch_events[pointer])
                pointer += next_period(rng)
            countdown = pointer - total + 1
            access_index += count
        result.total_events = len(events)
        result.total_accesses = access_index
        return self._finish_run(result, cache), events
