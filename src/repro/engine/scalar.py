"""The scalar reference backend: per-access Python loops.

This is the semantics every other backend must reproduce bit for bit.
It is the slowest engine by an order of magnitude (see BENCH artifacts)
and exists for differential testing and as executable documentation of
the reference behaviour.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.core.rcd import RcdAnalysis
from repro.engine.base import EngineBackend
from repro.pmu.sampler import AddressSampler, SamplingResult
from repro.robustness.budget import SamplingBudget
from repro.trace.batch import as_access_stream


class ScalarBackend(EngineBackend):
    """Per-access reference loops (``AddressSampler.run``, scalar RCD)."""

    name = "scalar"
    capabilities = frozenset({"reference", "windowed"})

    def sample(
        self,
        sampler: AddressSampler,
        trace: Any,
        budget: Optional[SamplingBudget] = None,
    ) -> SamplingResult:
        return sampler.run(as_access_stream(trace), budget=budget)

    def simulate(
        self,
        trace: Any,
        geometry: Optional[CacheGeometry] = None,
        policy: str = "lru",
        seed: int = 0,
        split_lines: bool = True,
        batch_size: Optional[int] = None,
    ) -> CacheStats:
        cache = SetAssociativeCache(
            geometry or CacheGeometry(), policy=policy, seed=seed
        )
        if split_lines:
            return cache.run_trace(as_access_stream(trace))
        for access in as_access_stream(trace):
            cache.access(access.address, access.ip)
        cache.flush_metrics()
        return cache.stats

    def rcd_from_addresses(
        self, addresses: Iterable[Any], geometry: CacheGeometry
    ) -> RcdAnalysis:
        return RcdAnalysis.from_addresses(
            (int(address) for address in addresses), geometry
        )

    def windowed_phases(
        self,
        samples: Any,
        geometry: CacheGeometry,
        *,
        window: int = 256,
        rcd_threshold: Optional[int] = None,
        cf_boundary: float = 0.25,
        min_window: int = 32,
        chunk_size: Optional[int] = None,  # noqa: ARG002 - scalar is unchunked
        on_window: Any = None,
    ) -> Any:
        from repro.core.contribution import DEFAULT_RCD_THRESHOLD
        from repro.core.streaming import StreamingPhaseAnalyzer

        analyzer = StreamingPhaseAnalyzer(
            geometry,
            window=window,
            rcd_threshold=(
                rcd_threshold
                if rcd_threshold is not None
                else DEFAULT_RCD_THRESHOLD
            ),
            cf_boundary=cf_boundary,
            min_window=min(min_window, window),
            on_window=on_window,
        )
        # Reference semantics: one scalar set_index per sample, in stream
        # order — no batching, no vectorized index extraction.
        import numpy as np

        if isinstance(samples, np.ndarray):
            analyzer.feed_sets(
                geometry.set_index(int(address)) for address in samples
            )
        else:
            analyzer.feed(samples)
        return analyzer.finish(engine=self.name)
