"""Engine backend protocol and registry.

Every way of driving a trace through the simulated cache — the scalar
reference loop, the columnar batched kernels, the sharded multiprocess
fan-out — is an :class:`EngineBackend`.  The profiler, the CLI, the perf
harness, and the service executor all select engines by *name* through
this registry, so adding a backend is one ``register_backend`` call: no
edits to :mod:`repro.core.profiler` or the CLI are needed (the
differential suite and the CLI's ``--engine`` choices pick it up from
:func:`backend_names` automatically).

The scalar backend remains the reference semantics; every other backend
is contractually bit-identical to it (enforced by the differential test
suite, which parametrizes over this registry).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, List, Optional, Union

from repro.errors import SamplingError

if TYPE_CHECKING:  # import only for annotations: keep this module cheap
    from repro.cache.geometry import CacheGeometry
    from repro.cache.stats import CacheStats
    from repro.pmu.sampler import AddressSampler, SamplingResult
    from repro.robustness.budget import SamplingBudget


class EngineBackend(ABC):
    """One strategy for running the simulation/analysis hot paths.

    Subclasses declare a unique :attr:`name` (the registry key and CLI
    spelling) and a :attr:`capabilities` set; the three abstract methods
    cover the pipeline's hot paths:

    - :meth:`sample` — drive a PEBS sampling run (the online phase);
    - :meth:`simulate` — drive a bare cache simulation to stats;
    - :meth:`rcd_from_addresses` — the offline RCD analysis hook.

    Backends are stateless value objects: :meth:`configure` returns a
    *new* backend with options applied rather than mutating in place, so
    the registered singletons are never perturbed by one caller.
    """

    #: Registry key and CLI spelling; subclasses must override.
    name: str = ""

    #: Capability tags.  ``"columnar"`` marks backends that prefer
    #: :class:`~repro.trace.batch.TraceBatch` input over scalar access
    #: streams (the perf harness feeds each backend its preferred shape);
    #: ``"parallel"`` marks multi-process backends.
    capabilities: FrozenSet[str] = frozenset()

    def configure(self, **options: Any) -> "EngineBackend":
        """Return a copy of this backend with ``options`` applied.

        The base implementation accepts no options; parallel backends
        override this to accept ``workers=`` and friends.  Unknown
        options raise :class:`~repro.errors.SamplingError` so a CLI typo
        (or ``--engine-workers`` against a serial backend) fails loudly
        instead of being silently ignored.
        """
        if options:
            unknown = ", ".join(sorted(options))
            raise SamplingError(
                f"engine {self.name!r} accepts no option(s): {unknown}"
            )
        return self

    @abstractmethod
    def sample(
        self,
        sampler: "AddressSampler",
        trace: Any,
        budget: Optional["SamplingBudget"] = None,
    ) -> "SamplingResult":
        """Run one PEBS sampling pass of ``sampler`` over ``trace``.

        ``trace`` may be a :class:`~repro.trace.batch.TraceBatch`, an
        iterable of batches, or a scalar access stream; backends
        normalize it to their preferred shape.  The result must be
        bit-identical to ``sampler.run`` on the same trace and seed.
        """

    @abstractmethod
    def simulate(
        self,
        trace: Any,
        geometry: Optional["CacheGeometry"] = None,
        policy: str = "lru",
        seed: int = 0,
        split_lines: bool = True,
        batch_size: Optional[int] = None,
    ) -> "CacheStats":
        """Drive ``trace`` through a fresh cache; return its stats.

        With ``split_lines=True`` line-straddling accesses expand to one
        reference per line touched (``access_record`` semantics);
        ``False`` keeps one reference per record (``access`` semantics,
        what the PEBS sampler models).
        """

    @abstractmethod
    def rcd_from_addresses(self, addresses: Any, geometry: "CacheGeometry") -> Any:
        """Build an RCD analysis from a miss/sample address column.

        Returns an object with the shared RCD query API
        (:class:`~repro.core.rcd.RcdAnalysis` /
        :class:`~repro.core.rcd.RcdArrayAnalysis`): ``observations``,
        ``observation_count``, ``histogram()``, ``mean_rcd()``,
        ``contribution_below()``...
        """

    def windowed_phases(
        self,
        samples: Any,
        geometry: "CacheGeometry",
        *,
        window: int = 256,
        rcd_threshold: Optional[int] = None,
        cf_boundary: float = 0.25,
        min_window: int = 32,
        chunk_size: Optional[int] = None,
        on_window: Any = None,
    ) -> Any:
        """Streaming windowed conflict analysis over a sample stream.

        ``samples`` is an address column (``ndarray``) or an iterable of
        :class:`~repro.pmu.sampler.AddressSample` records; the stream is
        consumed chunk-by-chunk with O(window) tracked state.  Returns a
        :class:`~repro.core.streaming.StreamingAnalysis` whose phase
        verdicts are bit-identical to the batch
        :class:`~repro.core.phases.PhaseAnalyzer` on the same stream
        (every backend shares this contract, like the other hooks).

        Backends declaring the ``"windowed"`` capability process the
        stream natively.  The base implementation is the **recorded
        fallback** for backends that don't (e.g. ``sharded``, whose
        per-set fan-out cannot help a windowed scan): it bumps
        ``engine.<name>.windowed_fallback``, routes through the chunked
        columnar path, and stamps the analysis with ``fallback_from`` so
        manifests show which engine was asked vs which ran.
        """
        from repro.core.streaming import (
            DEFAULT_CHUNK_SIZE,
            StreamingPhaseAnalyzer,
            iter_address_chunks,
        )
        from repro.obs.metrics import get_registry

        fallback = "windowed" not in self.capabilities
        if fallback:
            get_registry().counter(
                f"engine.{self.name}.windowed_fallback"
            ).inc()
        analyzer = StreamingPhaseAnalyzer(
            geometry,
            window=window,
            rcd_threshold=(
                rcd_threshold
                if rcd_threshold is not None
                else _default_rcd_threshold()
            ),
            cf_boundary=cf_boundary,
            # Small windows clamp the fold floor: callers setting only
            # `window` (CLI --window, service jobs) should not have to
            # know min_window's default exceeds tiny windows.
            min_window=min(min_window, window),
            on_window=on_window,
        )
        for chunk in iter_address_chunks(
            samples, chunk_size or DEFAULT_CHUNK_SIZE
        ):
            analyzer.feed_addresses(chunk)
        analysis = analyzer.finish(
            engine="batched" if fallback else self.name
        )
        if fallback:
            analysis.fallback_from = self.name
        return analysis

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def _default_rcd_threshold() -> int:
    """Lazy import of the paper's default T (keeps this module cheap)."""
    from repro.core.contribution import DEFAULT_RCD_THRESHOLD

    return DEFAULT_RCD_THRESHOLD


#: Name -> backend singleton.  Mutated only through the functions below.
_REGISTRY: Dict[str, EngineBackend] = {}


def register_backend(
    backend: EngineBackend, *, replace: bool = False
) -> EngineBackend:
    """Register ``backend`` under its declared name.

    Re-registering the *same* instance is a no-op; registering a
    different backend under a taken name raises unless ``replace=True``
    (tests swapping in a stub should restore the original afterwards —
    or register under a fresh name and :func:`unregister_backend` it).
    """
    name = backend.name
    if not name:
        raise SamplingError(
            f"engine backend {type(backend).__name__} declares no name"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not backend and not replace:
        raise SamplingError(
            f"engine {name!r} is already registered; pass replace=True "
            "to override"
        )
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the registry (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def backend_names() -> List[str]:
    """Sorted names of all registered backends (drives CLI choices and
    the differential suite's parametrization)."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> EngineBackend:
    """Look up a backend by name.

    Raises:
        SamplingError: Unknown name; the message lists what is
            registered (the CLI maps this onto its usage error).
    """
    backend = _REGISTRY.get(name)
    if backend is None:
        known = ", ".join(repr(known_name) for known_name in backend_names())
        raise SamplingError(
            f"unknown engine {name!r}; registered engines: {known}"
        )
    return backend


def resolve_backend(engine: Union[str, EngineBackend]) -> EngineBackend:
    """Normalize an engine spec — a name or an instance — to a backend.

    Accepting instances lets callers pass a pre-``configure``d backend
    (e.g. sharded with an explicit worker count) anywhere a name is
    accepted, without registering the variant.
    """
    if isinstance(engine, EngineBackend):
        return engine
    return get_backend(str(engine))
