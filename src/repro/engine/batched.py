"""The batched columnar backend: single-process vectorized kernels.

The default engine everywhere.  Traces move as
:class:`~repro.trace.batch.TraceBatch` columns through the vectorized
cache kernels (`SetAssociativeCache.access_batch`) and the array RCD
analysis; the differential suite pins it bit-identical to scalar.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.core.rcd import RcdArrayAnalysis
from repro.engine.base import EngineBackend
from repro.errors import SamplingError
from repro.pmu.sampler import AddressSampler, SamplingResult
from repro.robustness.budget import SamplingBudget
from repro.trace.batch import DEFAULT_BATCH_SIZE, as_batches


class BatchedBackend(EngineBackend):
    """Columnar single-process kernels (``AddressSampler.run_batched``)."""

    name = "batched"
    capabilities = frozenset({"columnar", "windowed"})

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        self.batch_size = batch_size

    def configure(self, **options: Any) -> "BatchedBackend":
        unknown = sorted(set(options) - {"batch_size"})
        if unknown:
            raise SamplingError(
                f"unknown option(s) for engine {self.name!r}: "
                + ", ".join(unknown) + " (accepts: batch_size)"
            )
        return BatchedBackend(
            batch_size=int(options.get("batch_size", self.batch_size))
        )

    def sample(
        self,
        sampler: AddressSampler,
        trace: Any,
        budget: Optional[SamplingBudget] = None,
    ) -> SamplingResult:
        return sampler.run_batched(
            trace, budget=budget, batch_size=self.batch_size
        )

    def simulate(
        self,
        trace: Any,
        geometry: Optional[CacheGeometry] = None,
        policy: str = "lru",
        seed: int = 0,
        split_lines: bool = True,
        batch_size: Optional[int] = None,
    ) -> CacheStats:
        cache = SetAssociativeCache(
            geometry or CacheGeometry(), policy=policy, seed=seed
        )
        for batch in as_batches(trace, batch_size or self.batch_size):
            cache.access_batch(batch, split_lines=split_lines)
        return cache.stats

    def rcd_from_addresses(
        self, addresses: Any, geometry: CacheGeometry
    ) -> RcdArrayAnalysis:
        if not isinstance(addresses, np.ndarray):
            addresses = np.fromiter(
                (int(address) for address in addresses), dtype=np.uint64
            )
        return RcdArrayAnalysis.from_addresses(addresses, geometry)
