"""Pluggable simulation engine backends.

Public API::

    from repro.engine import get_backend, backend_names, register_backend

    backend = get_backend("sharded").configure(workers=4)
    result = backend.sample(sampler, trace)

Three backends ship registered: ``scalar`` (the per-access reference),
``batched`` (single-process columnar kernels, the default everywhere),
and ``sharded`` (per-set work fanned over a multiprocessing pool through
a zero-copy shared-memory arena).  All are contractually bit-identical;
the differential suite parametrizes over :func:`backend_names` so any
newly registered backend is covered automatically.
"""

from repro.engine.arena import (
    ARENA_PREFIX,
    SharedTraceArena,
    arena_name_prefix,
    list_arena_segments,
)
from repro.engine.base import (
    EngineBackend,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.engine.batched import BatchedBackend
from repro.engine.scalar import ScalarBackend
from repro.engine.sharded import (
    CROSSOVER_CEIL,
    CROSSOVER_FLOOR,
    DEFAULT_CROSSOVER,
    DEFAULT_RCD_CROSSOVER,
    ShardedBackend,
    ShardedCacheSimulator,
    available_workers,
    calibrated_crossover,
    known_trace_length,
    shard_boundaries,
)

register_backend(ScalarBackend())
register_backend(BatchedBackend())
register_backend(ShardedBackend())

__all__ = [
    "ARENA_PREFIX",
    "BatchedBackend",
    "CROSSOVER_CEIL",
    "CROSSOVER_FLOOR",
    "DEFAULT_CROSSOVER",
    "DEFAULT_RCD_CROSSOVER",
    "EngineBackend",
    "ScalarBackend",
    "SharedTraceArena",
    "ShardedBackend",
    "ShardedCacheSimulator",
    "arena_name_prefix",
    "available_workers",
    "backend_names",
    "calibrated_crossover",
    "get_backend",
    "known_trace_length",
    "list_arena_segments",
    "register_backend",
    "resolve_backend",
    "shard_boundaries",
    "unregister_backend",
]
