"""Shared-memory trace arena: the sharded engine's zero-copy data plane.

PR 7's sharded backend shipped each worker its per-shard address/ip
column *slices* through pickled pipe sends — correct, but the serialize/
copy/deserialize round trip per batch per worker is exactly the IPC
constant BENCH_2a5ed55.json shows eating the parallelism (sharded at
0.41x batched on the CI host).  The arena replaces the payload channel
with one named POSIX shared-memory segment per simulator run
(:mod:`multiprocessing.shared_memory`): the parent writes each batch's
columns into the segment once, workers map the same physical pages and
*gather* their slices directly, and results come back through per-worker
regions of the same segment.  The pipes stay, but carry only tiny
control tuples — ``(segment, offset, length)`` descriptors down,
``("done", ...)`` acknowledgements up — so bytes moved per access drop
from ~16 (two u8 columns, pickled) to well under one.

Segment layout (one segment, all offsets derived from ``capacity`` C and
worker count K)::

    address    C x u8   input column, written by the parent per batch
    ip         C x u8   input column, written by the parent per batch
    positions  C x i8   shard-partitioned record positions (the batch
                        permutation); worker k reads its contiguous run
    per worker k (result region):
      flags    C x u1   bit0=hit, bit1=cold, bit2=evicted, per record
      tags     C x u8   evicted line tags, compacted under the evicted
                        mask (first ``evicted_count`` entries valid)

Lifecycle invariants (the chaos tests scan ``/dev/shm`` for these):

- The *creating* process owns the segment and is the only one that
  unlinks it; :meth:`close` in the owner unlinks even when numpy views
  are still alive somewhere (the name is removed; pages free when the
  last map drops).
- Workers :meth:`attach` by name and detach without unlinking; a worker
  dying mid-batch therefore never strands the segment — the parent's
  ``close()`` (or context-manager exit on the raised
  :class:`~repro.errors.SamplingError`) unlinks it.
- Ownership is pid-guarded: a forked child inheriting the parent's
  arena object can never unlink the live segment from ``__del__`` at
  child exit.
- If the owner is SIGKILLed before unlinking, the stdlib resource
  tracker (which both create and attach register with) unlinks the
  leftover at tracker shutdown — crash-safe cleanup without our code
  running.

Segment names carry the :data:`ARENA_PREFIX` and the creator pid, so
:func:`list_arena_segments` can assert leak-freedom for exactly this
process's arenas without racing other test processes.
"""

from __future__ import annotations

import os
import secrets
import threading
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # the runtime factory has no usable annotation type
    from _thread import RLock as _RLockType

import numpy as np

from repro.errors import SamplingError
from repro.obs.metrics import get_registry

#: Leading component of every arena segment name (``/dev/shm`` scans key
#: on it; keep it unusual enough to never collide with foreign segments).
ARENA_PREFIX = "ccprof-arena"

#: Counter charged once per segment created (calibration probes opt out).
METRIC_CREATED = "engine.sharded.arena.created"

#: Counter charged with each created segment's byte size.
METRIC_BYTES_MAPPED = "engine.sharded.arena.bytes_mapped"

#: Serializes segment create/attach/unlink — every operation that takes
#: the stdlib resource tracker's internal lock — against worker forks.
#: Forking a multi-threaded process (the service daemon: many worker
#: threads, each spawning shard workers) copies every lock in whatever
#: state some other thread left it; a child forked while a sibling
#: thread sat inside the tracker's critical section inherits that lock
#: *held*, deadlocks in :meth:`SharedTraceArena.attach`, and the parent
#: then blocks forever in ``recv``.  Holding one process-wide lock
#: around both the tracker-touching operations and the fork itself
#: (:func:`fork_lock`, taken by the simulator around ``Process.start``)
#: guarantees the tracker lock is free at every fork instant.  Reentrant
#: because a GC-triggered ``__del__`` → ``close()`` can fire on the very
#: thread already inside a locked region.
_FORK_LOCK = threading.RLock()


def fork_lock() -> "_RLockType":
    """The data plane's fork-serialization lock (current instance).

    Returned through a function because the child-side at-fork hook
    rebinds it: the forking thread necessarily holds the lock across
    the fork, so the child would inherit it locked and self-deadlock on
    its first ``attach`` without a fresh instance.
    """
    return _FORK_LOCK


def _refresh_fork_lock() -> None:
    global _FORK_LOCK
    _FORK_LOCK = threading.RLock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython/posix
    os.register_at_fork(after_in_child=_refresh_fork_lock)


def arena_name_prefix(pid: Optional[int] = None) -> str:
    """Name prefix of arenas created by ``pid`` (default: this process)."""
    return f"{ARENA_PREFIX}-{os.getpid() if pid is None else int(pid)}-"


def list_arena_segments(prefix: Optional[str] = None) -> List[str]:
    """Names of live ``/dev/shm`` segments matching ``prefix``.

    Defaults to this process's arenas (:func:`arena_name_prefix`); the
    lifecycle tests call this after kills/shutdowns and assert ``[]``.
    On platforms without a scannable ``/dev/shm`` this returns ``[]``,
    which keeps the assertions vacuously true rather than flaky.
    """
    wanted = prefix if prefix is not None else arena_name_prefix()
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-Linux
        return []
    return sorted(entry for entry in entries if entry.startswith(wanted))


class SharedTraceArena:
    """One shared-memory segment holding a batch's columns and results.

    Created by the simulator parent (:meth:`create`), attached by shard
    workers (:meth:`attach`).  All numpy views are over the same mapped
    pages; the control protocol's happens-before (worker replies on its
    pipe only after writing its result region) is the only
    synchronization needed.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        capacity: int,
        workers: int,
        owner: bool,
    ) -> None:
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self.capacity = int(capacity)
        self.workers = int(workers)
        self._owner_pid = os.getpid() if owner else None
        self._views: Dict[str, np.ndarray] = {}

    # -- sizing ----------------------------------------------------------

    @staticmethod
    def required_bytes(capacity: int, workers: int) -> int:
        """Segment size for ``capacity`` records and ``workers`` regions.

        8 (address) + 8 (ip) + 8 (positions) shared bytes per record,
        plus 1 (flags) + 8 (tags) per record per worker.
        """
        return int(capacity) * (24 + 9 * int(workers))

    @property
    def nbytes(self) -> int:
        """Mapped segment size in bytes."""
        return self.required_bytes(self.capacity, self.workers)

    @property
    def name(self) -> str:
        """Segment name (attachable; visible under ``/dev/shm``)."""
        if self._segment is None:
            raise SamplingError("arena is closed")
        return self._segment.name

    # -- construction ----------------------------------------------------

    @classmethod
    def create(
        cls, capacity: int, workers: int, *, charge_metrics: bool = True
    ) -> "SharedTraceArena":
        """Create and own a fresh segment (parent side).

        Charges :data:`METRIC_CREATED` / :data:`METRIC_BYTES_MAPPED`
        unless ``charge_metrics`` is off (the crossover calibration probe
        must not count as a real data-plane allocation — the fallback
        tests assert zero creations on the batched route).
        """
        capacity = int(capacity)
        workers = int(workers)
        if capacity <= 0 or workers <= 0:
            raise SamplingError(
                f"arena needs positive capacity/workers, got "
                f"{capacity}/{workers}"
            )
        name = arena_name_prefix() + secrets.token_hex(6)
        with fork_lock():
            segment = shared_memory.SharedMemory(
                name=name,
                create=True,
                size=cls.required_bytes(capacity, workers),
            )
        if charge_metrics:
            registry = get_registry()
            if registry.enabled:
                registry.counter(METRIC_CREATED).inc()
                registry.counter(METRIC_BYTES_MAPPED).inc(
                    cls.required_bytes(capacity, workers)
                )
        return cls(segment, capacity, workers, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int, workers: int) -> "SharedTraceArena":
        """Map an existing segment by name (worker side; never unlinks)."""
        try:
            with fork_lock():
                segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError as exc:
            raise SamplingError(
                f"arena segment {name!r} is gone (owner already unlinked?)"
            ) from exc
        return cls(segment, capacity, workers, owner=False)

    # -- views -----------------------------------------------------------

    def _view(self, key: str, offset: int, count: int, dtype: Any) -> np.ndarray:
        view = self._views.get(key)
        if view is None:
            if self._segment is None:
                raise SamplingError("arena is closed")
            view = np.frombuffer(
                self._segment.buf, dtype=dtype, count=count, offset=offset
            )
            self._views[key] = view
        return view

    @property
    def address(self) -> np.ndarray:
        """Input address column (u8, ``capacity`` entries)."""
        return self._view("address", 0, self.capacity, np.uint64)

    @property
    def ip(self) -> np.ndarray:
        """Input ip column (u8, ``capacity`` entries)."""
        return self._view("ip", self.capacity * 8, self.capacity, np.uint64)

    @property
    def positions(self) -> np.ndarray:
        """Shard-partitioned record positions (i8, ``capacity`` entries)."""
        return self._view(
            "positions", self.capacity * 16, self.capacity, np.int64
        )

    def flags(self, worker: int) -> np.ndarray:
        """Worker ``worker``'s per-record result flags (u1 bitfield)."""
        offset = self.capacity * 24 + worker * self.capacity * 9
        return self._view(f"flags{worker}", offset, self.capacity, np.uint8)

    def tags(self, worker: int) -> np.ndarray:
        """Worker ``worker``'s compacted evicted-tag column (u8)."""
        offset = self.capacity * 24 + worker * self.capacity * 9 + self.capacity
        return self._view(f"tags{worker}", offset, self.capacity, np.uint64)

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once this handle released its mapping."""
        return self._segment is None

    def close(self) -> None:
        """Release the mapping; the owning process also unlinks the name.

        Idempotent.  Unlink happens even if the ``mmap`` close is
        blocked by a still-exported numpy view (the name disappears
        immediately either way; pages free when the last map drops).
        """
        segment, self._segment = self._segment, None
        if segment is None:
            return
        self._views.clear()
        with fork_lock():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - caller kept a view alive
                pass
            if self._owner_pid == os.getpid():
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def __enter__(self) -> "SharedTraceArena":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort leak guard
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def __repr__(self) -> str:
        state = "closed" if self._segment is None else self._segment.name
        return (
            f"SharedTraceArena({state}, capacity={self.capacity}, "
            f"workers={self.workers})"
        )
