"""The sharded backend: per-set work fanned across worker processes.

Cache sets are independent state machines — a reference to set *s* never
reads or writes the recency list, replacement policy, or cold-line set of
any other set (the per-set policy RNGs are seeded ``seed + set_index``,
so their streams are independent too).  The sharded engine exploits that:
it partitions the ``num_sets`` sets into K contiguous shards, gives each
shard to a persistent worker process holding its own
:class:`~repro.cache.set_assoc.SetAssociativeCache`, and for every trace
batch ships each worker only the *column slices* of the accesses that map
to its sets (pickle-cheap: a few u8 arrays, never the whole trace).

Per-batch protocol (parent side, see :class:`ShardedCacheSimulator`):

1. compute ``set_indices`` for the batch, partition record positions by
   shard boundary;
2. send each worker its (address, ip) slices; workers run the ordinary
   per-set kernels and reply with hit/cold/evicted masks plus cumulative
   scalar stat totals;
3. scatter the replies back into full-batch result arrays.

Because each worker sees its sets' accesses in trace order and runs the
*same* per-set state machines as the batched engine, the scattered
:class:`~repro.cache.set_assoc.BatchResult` is bit-identical to a
single-process run — the sampler's countdown walk, executed serially in
the parent over the merged event mask, therefore reproduces the scalar
reference exactly (samples, truncation, budgets and all).

Merging is deterministic everywhere: cache stats merge by field-wise sum
(:meth:`~repro.cache.stats.CacheStats.merge`); RCD observations merge by
sorting per-shard columns on global miss position
(:func:`~repro.core.rcd.merge_rcd_pieces`), which reproduces the global
computation exactly because an RCD pairs consecutive misses *of one set*
and every set lives wholly inside one shard; conflict periods derive from
the merged RCD columns.  Obs counters are charged by the parent from the
merged stat totals under the same delta high-water-mark scheme as the
single-process engines, so per-run counter totals are identical as well
(workers run under a null registry).

For ``workers <= 1`` or traces of known length below :data:`DEFAULT_CROSSOVER`
the backend falls back to ``batched``: process spawn plus per-batch IPC
costs ~10 ms per worker, which the measured crossover (see
``perf/harness.py`` results in BENCH artifacts) places around 10^5
accesses on commodity hardware.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import (
    BatchResult,
    SetAssociativeCache,
    split_line_straddlers,
)
from repro.cache.stats import CacheStats
from repro.core.rcd import RcdArrayAnalysis, compute_rcd_arrays, merge_rcd_pieces
from repro.engine.base import EngineBackend, get_backend
from repro.errors import SamplingError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.pmu.sampler import AddressSampler, SamplingResult
from repro.robustness.budget import SamplingBudget
from repro.trace.batch import DEFAULT_BATCH_SIZE, TraceBatch, as_batches

#: Trace length below which sharding is not worth the process/IPC cost.
#: Measured on the perf harness workloads (see DESIGN.md §5e): per-batch
#: fan-out costs ~1-2 ms for 4 workers, so traces under ~2 batches lose.
#: Override per backend via ``configure(crossover=...)``.
DEFAULT_CROSSOVER = 200_000

#: Miss-sequence length below which the sharded RCD analysis computes its
#: per-shard pieces serially in-process (the merge is identical either
#: way; a process pool only pays off for very long exact-mode sequences).
DEFAULT_RCD_CROSSOVER = 1_000_000


def available_workers() -> int:
    """Usable CPUs for this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def default_mp_context():
    """Fork where available (cheap, inherits the interpreter), else spawn.

    The worker entry point and all shipped state (geometry, column
    slices) are module-level / picklable, so both start methods work.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def shard_boundaries(num_sets: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, num_sets)`` into up to ``shards`` contiguous ranges.

    Ranges are half-open ``(lo, hi)``, balanced to within one set, and
    never empty — asking for more shards than sets yields ``num_sets``
    singleton ranges (the K > num_sets regression case).
    """
    if num_sets <= 0:
        raise SamplingError(f"num_sets must be positive: {num_sets}")
    shards = max(1, min(int(shards), int(num_sets)))
    edges = [round(index * num_sets / shards) for index in range(shards + 1)]
    return [
        (edges[index], edges[index + 1])
        for index in range(shards)
        if edges[index + 1] > edges[index]
    ]


def known_trace_length(trace) -> Optional[int]:
    """Record count of ``trace`` when knowable without consuming it."""
    if isinstance(trace, TraceBatch):
        return len(trace)
    if isinstance(trace, (list, tuple)):
        if not trace:
            return 0
        if isinstance(trace[0], TraceBatch):
            return sum(len(batch) for batch in trace)
        return len(trace)
    return None


def _shard_worker_main(
    conn, geometry: CacheGeometry, policy: str, seed: int
) -> None:
    """Worker loop: one full-geometry cache, fed only its shard's slices.

    The cache is built over the *full* geometry so per-set policy seeds
    (``seed + set_index``) match the single-process reference exactly;
    memory cost is a few empty lists per foreign set.  Workers run under
    a null metrics registry and tracer — the parent charges obs
    aggregates from the merged totals, keeping per-run counter totals
    identical to the single-process engines.
    """
    from repro.obs.metrics import NULL_REGISTRY, use_registry
    from repro.obs.tracing import NULL_TRACER, use_tracer

    with use_registry(NULL_REGISTRY), use_tracer(NULL_TRACER):
        cache = SetAssociativeCache(geometry, policy=policy, seed=seed)
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            command = message[0]
            if command == "batch":
                result = cache.access_arrays(message[1], message[2])
                stats = cache.stats
                conn.send(
                    (
                        result.hit,
                        result.cold,
                        result.evicted,
                        # Compact: tags only where evicted; the parent
                        # scatters them back under the evicted mask.
                        result.evicted_tag[result.evicted],
                        (
                            stats.accesses,
                            stats.hits,
                            stats.misses,
                            stats.evictions,
                            stats.cold_misses,
                        ),
                    )
                )
            elif command == "stats":
                conn.send(cache.stats)
            else:  # "close"
                break
    conn.close()


def _rcd_shard(subsequence: np.ndarray, positions: np.ndarray) -> tuple:
    """Pool task: RCD columns of one shard's misses at global positions."""
    return compute_rcd_arrays(subsequence, positions=positions)


class ShardedCacheSimulator:
    """A drop-in cache for ``AddressSampler.run_batched``, sharded over
    worker processes.

    Duck-types the slice of :class:`SetAssociativeCache` the batched
    sampler uses — ``access_batch`` / ``stats`` / ``flush_metrics`` /
    ``geometry`` — while farming the per-set state machines out to one
    process per shard.  Workers are spawned lazily on first access and
    must be released with :meth:`close` (or a ``with`` block).
    """

    def __init__(
        self,
        geometry: CacheGeometry = None,
        policy: str = "lru",
        seed: int = 0,
        workers: int = 2,
        mp_context=None,
    ) -> None:
        self.geometry = geometry or CacheGeometry()
        self.policy_name = policy.lower()
        self.seed = seed
        self.bounds = shard_boundaries(self.geometry.num_sets, workers)
        self._context = mp_context or default_mp_context()
        self._shards: Optional[List[tuple]] = None  # [(process, conn), ...]
        self._totals = [(0, 0, 0, 0, 0)] * len(self.bounds)
        self._flushed = (0, 0, 0, 0, 0)
        self._stats_cache: Optional[CacheStats] = None

    @property
    def workers(self) -> int:
        """Actual shard/worker count (may be below the requested K)."""
        return len(self.bounds)

    def _ensure_pool(self) -> None:
        if self._shards is not None:
            return
        shards = []
        for _ in self.bounds:
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=_shard_worker_main,
                args=(child_conn, self.geometry, self.policy_name, self.seed),
                daemon=True,
            )
            process.start()
            child_conn.close()
            shards.append((process, parent_conn))
        self._shards = shards

    # -- SetAssociativeCache-compatible surface --------------------------

    def access_batch(
        self, batch: TraceBatch, *, split_lines: bool = False
    ) -> BatchResult:
        """Sharded :meth:`SetAssociativeCache.access_batch`."""
        addresses = batch.address
        ips = batch.ip
        if split_lines:
            addresses, ips = split_line_straddlers(
                self.geometry, addresses, ips, batch.size
            )
        result = self.access_arrays(addresses, ips)
        self.flush_metrics()
        return result

    def access_arrays(
        self, addresses: np.ndarray, ips: np.ndarray
    ) -> BatchResult:
        """Fan one batch's columns out to the shard workers and merge.

        Sends are issued to every worker before any reply is awaited, so
        shards simulate concurrently; the parent never sends batch N+1
        before collecting all of batch N, which bounds pipe buffering and
        rules out send/recv deadlock.
        """
        geometry = self.geometry
        set_idx = geometry.set_indices(addresses)
        tags = geometry.tags(addresses)
        count = int(addresses.size)
        hit = np.zeros(count, dtype=bool)
        cold = np.zeros(count, dtype=bool)
        evicted = np.zeros(count, dtype=bool)
        evicted_tag = np.zeros(count, dtype=np.uint64)
        result = BatchResult(hit, set_idx, tags, evicted, evicted_tag, cold)
        if not count:
            return result

        self._ensure_pool()
        positions_per_shard = []
        for (low, high), (_, conn) in zip(self.bounds, self._shards):
            mask = (set_idx >= low) & (set_idx < high)
            positions = np.flatnonzero(mask)
            conn.send(
                (
                    "batch",
                    np.ascontiguousarray(addresses[positions]),
                    np.ascontiguousarray(ips[positions]),
                )
            )
            positions_per_shard.append(positions)
        for index, ((process, conn), positions) in enumerate(
            zip(self._shards, positions_per_shard)
        ):
            try:
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                raise SamplingError(
                    f"shard worker {index} (sets "
                    f"{self.bounds[index][0]}..{self.bounds[index][1] - 1}) "
                    f"died mid-batch (exit code {process.exitcode})"
                ) from exc
            shard_hit, shard_cold, shard_evicted, evicted_values, totals = reply
            hit[positions] = shard_hit
            cold[positions] = shard_cold
            evicted[positions] = shard_evicted
            if evicted_values.size:
                evicted_tag[positions[shard_evicted]] = evicted_values
            self._totals[index] = totals
        self._stats_cache = None
        return result

    @property
    def stats(self) -> CacheStats:
        """Merged stats across shards (field-wise sums; cached per batch)."""
        if self._stats_cache is not None:
            return self._stats_cache
        if self._shards is None:
            merged = CacheStats(geometry=self.geometry)
        else:
            for _, conn in self._shards:
                conn.send(("stats",))
            parts = [conn.recv() for _, conn in self._shards]
            merged = parts[0]
            for part in parts[1:]:
                merged = merged.merge(part)
        self._stats_cache = merged
        return merged

    def flush_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Delta high-water-mark flush over the merged shard totals.

        Same scheme as :meth:`SetAssociativeCache.flush_metrics`, driven
        by the cumulative totals each worker reports with every batch —
        no extra IPC round-trip, and per-run ``cache.*`` counter totals
        identical to the single-process engines.
        """
        registry = registry if registry is not None else get_registry()
        if not registry.enabled:
            return
        totals = tuple(
            sum(shard_totals[index] for shard_totals in self._totals)
            for index in range(5)
        )
        names = (
            "cache.accesses",
            "cache.hits",
            "cache.misses",
            "cache.evictions",
            "cache.cold_misses",
        )
        for name, new, old in zip(names, totals, self._flushed):
            if new != old:
                registry.counter(name).inc(new - old)
        self._flushed = totals

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._shards is None:
            return
        shards, self._shards = self._shards, None
        for _, conn in shards:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for process, _ in shards:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=1.0)

    def __enter__(self) -> "ShardedCacheSimulator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort leak guard
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass


class ShardedBackend(EngineBackend):
    """Multiprocess engine: contiguous set shards, one worker each.

    Args:
        workers: Shard/worker count; ``None`` (default) uses the host's
            usable CPU count.  Clamped to ``num_sets`` at run time.
        crossover: Known trace lengths below this fall back to the
            batched engine (process startup + per-batch IPC dominates).
            Traces of unknown length (generators) are assumed large.
        rcd_crossover: Miss sequences below this compute their RCD shards
            serially (the merge is identical; only wall-clock differs).
        mp_context: Explicit multiprocessing context (tests use this).
    """

    name = "sharded"
    capabilities = frozenset({"columnar", "parallel"})

    def __init__(
        self,
        workers: Optional[int] = None,
        crossover: int = DEFAULT_CROSSOVER,
        rcd_crossover: int = DEFAULT_RCD_CROSSOVER,
        mp_context=None,
    ) -> None:
        if workers is not None and workers < 1:
            raise SamplingError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.crossover = crossover
        self.rcd_crossover = rcd_crossover
        self.mp_context = mp_context

    def configure(self, **options) -> "ShardedBackend":
        known = {"workers", "crossover", "rcd_crossover"}
        unknown = sorted(set(options) - known)
        if unknown:
            raise SamplingError(
                f"engine {self.name!r} accepts no option(s): "
                + ", ".join(unknown)
            )
        return ShardedBackend(
            workers=options.get("workers", self.workers),
            crossover=int(options.get("crossover", self.crossover)),
            rcd_crossover=int(
                options.get("rcd_crossover", self.rcd_crossover)
            ),
            mp_context=self.mp_context,
        )

    def worker_count(self, num_sets: int) -> int:
        """Effective shard count for a geometry."""
        workers = (
            self.workers if self.workers is not None else available_workers()
        )
        return max(1, min(int(workers), int(num_sets)))

    def _fall_back(self, num_sets: int, trace) -> bool:
        if self.worker_count(num_sets) <= 1:
            return True
        length = known_trace_length(trace)
        return length is not None and length < self.crossover

    def sample(
        self,
        sampler: AddressSampler,
        trace,
        budget: Optional[SamplingBudget] = None,
    ) -> SamplingResult:
        if self._fall_back(sampler.geometry.num_sets, trace):
            return get_backend("batched").sample(sampler, trace, budget=budget)
        simulator = ShardedCacheSimulator(
            sampler.geometry,
            policy=sampler.policy,
            workers=self.worker_count(sampler.geometry.num_sets),
            mp_context=self.mp_context,
        )
        with simulator:
            return sampler.run_batched(trace, budget=budget, cache=simulator)

    def simulate(
        self,
        trace,
        geometry: Optional[CacheGeometry] = None,
        policy: str = "lru",
        seed: int = 0,
        split_lines: bool = True,
        batch_size: Optional[int] = None,
    ) -> CacheStats:
        geometry = geometry or CacheGeometry()
        if self._fall_back(geometry.num_sets, trace):
            return get_backend("batched").simulate(
                trace,
                geometry=geometry,
                policy=policy,
                seed=seed,
                split_lines=split_lines,
                batch_size=batch_size,
            )
        simulator = ShardedCacheSimulator(
            geometry,
            policy=policy,
            seed=seed,
            workers=self.worker_count(geometry.num_sets),
            mp_context=self.mp_context,
        )
        with simulator:
            for batch in as_batches(trace, batch_size or DEFAULT_BATCH_SIZE):
                simulator.access_batch(batch, split_lines=split_lines)
            return simulator.stats

    def rcd_from_addresses(self, addresses, geometry: CacheGeometry):
        if not isinstance(addresses, np.ndarray):
            addresses = np.fromiter(
                (int(address) for address in addresses), dtype=np.uint64
            )
        sequence = geometry.set_indices(addresses).astype(np.int64)
        return self.rcd_from_set_sequence(sequence, geometry.num_sets)

    def rcd_from_set_sequence(
        self, set_sequence: Sequence[int], num_sets: int
    ) -> RcdArrayAnalysis:
        """Sharded RCD: per-shard columns at global positions, merged.

        Each shard computes observations for *its* sets only, carrying
        the misses' global sequence positions; concatenating the pieces
        and sorting on position reproduces the global analysis exactly
        (RCDs pair consecutive misses of one set, and each set lives
        wholly inside one shard).
        """
        sequence = np.asarray(set_sequence, dtype=np.int64)
        workers = self.worker_count(num_sets)
        if workers <= 1:
            return RcdArrayAnalysis.from_set_sequence(sequence, num_sets)
        tasks = []
        for low, high in shard_boundaries(num_sets, workers):
            mask = (sequence >= low) & (sequence < high)
            tasks.append(
                (sequence[mask], np.flatnonzero(mask).astype(np.int64))
            )
        if sequence.size >= self.rcd_crossover:
            context = self.mp_context or default_mp_context()
            with context.Pool(processes=workers) as pool:
                pieces = pool.starmap(_rcd_shard, tasks)
        else:
            pieces = [_rcd_shard(subseq, pos) for subseq, pos in tasks]
        sets, rcds, positions = merge_rcd_pieces(pieces)
        return RcdArrayAnalysis(
            num_sets=num_sets,
            set_index=sets,
            rcd=rcds,
            position=positions,
            total_misses=int(sequence.size),
        )
