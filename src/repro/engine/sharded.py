"""The sharded backend: per-set work fanned across worker processes.

Cache sets are independent state machines — a reference to set *s* never
reads or writes the recency list, replacement policy, or cold-line set of
any other set (the per-set policy RNGs are seeded ``seed + set_index``,
so their streams are independent too).  The sharded engine exploits that:
it partitions the ``num_sets`` sets into K contiguous shards and gives
each shard to a persistent worker process holding its own
:class:`~repro.cache.set_assoc.SetAssociativeCache`.

Since PR 8 the data plane is zero-copy: batch columns move through a
:class:`~repro.engine.arena.SharedTraceArena` (one named shared-memory
segment per simulator run) instead of pickled pipe payloads.  Per batch:

1. the parent computes ``set_indices``, partitions record positions by
   shard in a single stable argsort, and writes the address/ip columns
   plus the partitioned position array into the arena *once*;
2. each worker receives only a control tuple ``("batch", offset, count)``
   over its pipe — a descriptor into the shared positions array — and
   gathers its slices straight out of the mapped pages; it runs the
   ordinary per-set kernels and writes hit/cold/evicted flag bytes and
   compacted evicted tags into its own result region of the segment,
   then acknowledges with its cumulative scalar stat totals;
3. the parent scatters the shared result regions back into full-batch
   arrays.

The pipes therefore carry tens of bytes per batch instead of the full
columns; :func:`ShardedCacheSimulator.flush_metrics` charges the exact
pipe traffic to ``engine.sharded.ipc.bytes_shipped`` and the arena
charges ``engine.sharded.arena.bytes_mapped`` /
``engine.sharded.arena.created`` on creation, so the transport cost is
observable (and asserted in CI against the pre-arena pipe baseline).

Because each worker sees its sets' accesses in trace order and runs the
*same* per-set state machines as the batched engine, the scattered
:class:`~repro.cache.set_assoc.BatchResult` is bit-identical to a
single-process run — the sampler's countdown walk, executed serially in
the parent over the merged event mask, therefore reproduces the scalar
reference exactly (samples, truncation, budgets and all).

Merging is deterministic everywhere: cache stats merge by field-wise sum
(:meth:`~repro.cache.stats.CacheStats.merge`); RCD observations merge by
sorting per-shard columns on global miss position
(:func:`~repro.core.rcd.merge_rcd_pieces`), which reproduces the global
computation exactly because an RCD pairs consecutive misses *of one set*
and every set lives wholly inside one shard; conflict periods derive from
the merged RCD columns.  Obs counters are charged by the parent from the
merged stat totals under the same delta high-water-mark scheme as the
single-process engines, so per-run counter totals are identical as well
(workers run under a null registry).

The simulator can also record per-shard miss columns *during* the
simulate pass (``record_misses=True``): the per-record miss masks the
workers already produced are reused to accumulate each shard's miss set
indices at their global miss ordinals, so
:meth:`ShardedBackend.simulate_with_rcd` derives the full RCD analysis
without re-entering simulation (previously ``rcd_from_addresses`` after
a simulate re-partitioned and re-scanned everything).

For ``workers <= 1`` the backend falls back to ``batched`` outright; for
traces of known length below the crossover it does the same *without
allocating any shared-memory segment*.  The crossover defaults to
``None`` = auto: :func:`calibrated_crossover` estimates the break-even
trace length from this host's measured per-access batched cost and the
measured fixed costs (arena create/unlink, worker spawn) instead of the
old hard-coded 200k guess.  :data:`DEFAULT_CROSSOVER` remains as the
clamp midpoint and the documented fallback when measurement is
impossible.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import (
    BatchResult,
    SetAssociativeCache,
    split_line_straddlers,
)
from repro.cache.stats import CacheStats
from repro.core.rcd import RcdArrayAnalysis, compute_rcd_arrays, merge_rcd_pieces
from repro.engine.arena import SharedTraceArena, fork_lock
from repro.engine.base import EngineBackend, get_backend
from repro.errors import SamplingError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.pmu.sampler import AddressSampler, SamplingResult
from repro.robustness.budget import SamplingBudget
from repro.trace.batch import DEFAULT_BATCH_SIZE, TraceBatch, as_batches

#: Fallback/midpoint trace-length crossover when calibration cannot run.
#: The real default is ``crossover=None`` = auto-calibrated per host (see
#: :func:`calibrated_crossover`); an explicit integer pins it.
DEFAULT_CROSSOVER = 200_000

#: Clamp bounds for the auto-calibrated crossover: never shard traces
#: under one batch's worth of accesses, and never demand more than ~10
#: batches just to break even (a measurement that extreme is noise).
CROSSOVER_FLOOR = 32_768
CROSSOVER_CEIL = 4_000_000

#: Miss-sequence length below which the sharded RCD analysis computes its
#: per-shard pieces serially in-process (the merge is identical either
#: way; a process pool only pays off for very long exact-mode sequences).
DEFAULT_RCD_CROSSOVER = 1_000_000


def available_workers() -> int:
    """Usable CPUs for this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def default_mp_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits the interpreter), else spawn.

    The worker entry point and all shipped state (geometry, arena name,
    control tuples) are module-level / picklable, so both start methods
    work.  Fork from a *multi-threaded* parent (the service daemon) is
    made safe by :func:`repro.engine.arena.fork_lock`: every worker fork
    and every resource-tracker-touching segment operation serialize on
    it, so no child can inherit the tracker's lock in a held state (the
    classic fork-vs-threads deadlock, reproduced by the daemon load
    harness at 8 worker threads before the lock existed).
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def shard_boundaries(num_sets: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, num_sets)`` into up to ``shards`` contiguous ranges.

    Ranges are half-open ``(lo, hi)``, balanced to within one set, and
    never empty — asking for more shards than sets yields ``num_sets``
    singleton ranges (the K > num_sets regression case).
    """
    if num_sets <= 0:
        raise SamplingError(f"num_sets must be positive: {num_sets}")
    shards = max(1, min(int(shards), int(num_sets)))
    edges = [round(index * num_sets / shards) for index in range(shards + 1)]
    return [
        (edges[index], edges[index + 1])
        for index in range(shards)
        if edges[index + 1] > edges[index]
    ]


def known_trace_length(trace: Any) -> Optional[int]:
    """Record count of ``trace`` when knowable without consuming it."""
    if isinstance(trace, TraceBatch):
        return len(trace)
    if isinstance(trace, (list, tuple)):
        if not trace:
            return 0
        if isinstance(trace[0], TraceBatch):
            return sum(len(batch) for batch in trace)
        return len(trace)
    return None


def _shard_worker_main(
    conn: Any,
    geometry: CacheGeometry,
    policy: str,
    seed: int,
    arena_name: str,
    capacity: int,
    workers: int,
    shard_index: int,
) -> None:
    """Worker loop: one full-geometry cache fed shared-arena descriptors.

    The cache is built over the *full* geometry so per-set policy seeds
    (``seed + set_index``) match the single-process reference exactly;
    memory cost is a few empty lists per foreign set.  Workers run under
    a null metrics registry and tracer — the parent charges obs
    aggregates from the merged totals, keeping per-run counter totals
    identical to the single-process engines.

    Control protocol (pickled tuples over ``send_bytes``; the arena
    carries all bulk data):

    - ``("batch", offset, count)`` — gather ``positions[offset:offset+
      count]`` from the arena, simulate those records, write flag bytes
      (bit0=hit, bit1=cold, bit2=evicted) and compacted evicted tags to
      this worker's result region, reply ``("done", evicted_count,
      totals)``.
    - ``("remap", name, capacity)`` — detach the current segment, attach
      the named replacement (the parent grew the arena).  No reply: pipe
      FIFO order guarantees the next ``batch`` finds the new mapping.
    - ``("stats",)`` — reply with the full pickled :class:`CacheStats`.
    - ``("close",)`` — exit.
    """
    from repro.obs.metrics import NULL_REGISTRY, use_registry
    from repro.obs.tracing import NULL_TRACER, use_tracer

    with use_registry(NULL_REGISTRY), use_tracer(NULL_TRACER):
        arena = SharedTraceArena.attach(arena_name, capacity, workers)
        cache = SetAssociativeCache(geometry, policy=policy, seed=seed)
        try:
            while True:
                try:
                    message = pickle.loads(conn.recv_bytes())
                except (EOFError, OSError):
                    break
                command = message[0]
                if command == "batch":
                    offset, count = message[1], message[2]
                    positions = arena.positions[offset : offset + count]
                    # Gathers copy out of the mapped pages — the only
                    # per-record data movement on the worker side.
                    addresses = arena.address.take(positions)
                    ips = arena.ip.take(positions)
                    # Drop the view before the next remap/close: a live
                    # export would block the segment's mmap release.
                    del positions
                    result = cache.access_arrays(addresses, ips)
                    flags = (
                        result.hit.astype(np.uint8)
                        | (result.cold.astype(np.uint8) << 1)
                        | (result.evicted.astype(np.uint8) << 2)
                    )
                    np.copyto(arena.flags(shard_index)[:count], flags)
                    evicted_values = result.evicted_tag[result.evicted]
                    if evicted_values.size:
                        np.copyto(
                            arena.tags(shard_index)[: evicted_values.size],
                            evicted_values,
                        )
                    stats = cache.stats
                    conn.send_bytes(
                        pickle.dumps(
                            (
                                "done",
                                int(evicted_values.size),
                                (
                                    stats.accesses,
                                    stats.hits,
                                    stats.misses,
                                    stats.evictions,
                                    stats.cold_misses,
                                ),
                            )
                        )
                    )
                elif command == "remap":
                    arena.close()
                    arena = SharedTraceArena.attach(
                        message[1], message[2], workers
                    )
                elif command == "stats":
                    conn.send_bytes(pickle.dumps(cache.stats))
                else:  # "close"
                    break
        finally:
            # Never unlinks: workers are not owners.  The parent's
            # close() (or the resource tracker, if the parent was
            # killed) removes the name.
            arena.close()
    conn.close()


def _rcd_shard(subsequence: np.ndarray, positions: np.ndarray) -> tuple:
    """Pool task: RCD columns of one shard's misses at global positions."""
    return compute_rcd_arrays(subsequence, positions=positions)


def _partition_by_shard(
    values: np.ndarray, highs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-pass shard partition of a set-index array.

    Returns ``(order, offsets)``: one stable argsort by shard id (so
    trace order is preserved within each shard) and the prefix offsets
    delimiting each shard's run inside ``order``.  Replaces the old
    K-boolean-mask scan, which touched the full array once per shard.
    """
    shard_id = np.searchsorted(highs, values, side="right")
    order = np.argsort(shard_id, kind="stable").astype(np.int64)
    counts = np.bincount(shard_id, minlength=highs.size)
    offsets = np.zeros(highs.size + 1, dtype=np.int64)
    np.cumsum(counts[: highs.size], out=offsets[1:])
    return order, offsets


def _noop() -> None:
    """Calibration target: measures bare process spawn/join cost."""


_CALIBRATED: Dict[Tuple[int, CacheGeometry], int] = {}


def calibrated_crossover(
    workers: int,
    geometry: Optional[CacheGeometry] = None,
    *,
    refresh: bool = False,
) -> int:
    """Break-even trace length for sharding, measured on this host.

    Sharding pays a fixed setup cost — spawning ``workers`` processes
    and creating/unlinking the arena segment — and wins back roughly
    ``(1 - 1/workers)`` of the batched per-access simulation cost on
    every access (the parent-side partition/scatter work is the residual
    1/workers-ish share).  The crossover is the trace length where the
    saving covers the setup::

        crossover ~= fixed_cost / (per_access_batched * (1 - 1/workers))

    Probes are tiny (one ~16k-record batched run, one arena create, one
    no-op process round trip) and the result is cached per
    ``(workers, geometry)`` pair for the process lifetime — per-access
    cost scales with the geometry's ways, so a run that switches
    geometries mid-process re-probes rather than reusing a stale
    threshold.  The arena probe is explicitly *uncharged*
    on the metrics registry — calibration must not count as a data-plane
    allocation.  Results clamp to [:data:`CROSSOVER_FLOOR`,
    :data:`CROSSOVER_CEIL`]; any measurement failure falls back to
    :data:`DEFAULT_CROSSOVER`.
    """
    workers = max(2, int(workers))
    geometry = geometry if geometry is not None else CacheGeometry()
    key = (workers, geometry)
    if not refresh and key in _CALIBRATED:
        return _CALIBRATED[key]
    try:
        probe = 16_384
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 1 << 24, size=probe, dtype=np.uint64)
        ips = np.zeros(probe, dtype=np.uint64)
        cache = SetAssociativeCache(geometry, policy="lru", seed=0)
        per_access = min(
            _timed_seconds(lambda: cache.access_arrays(addresses, ips))
            for _ in range(3)
        ) / probe

        arena_cost = _timed_seconds(
            lambda: SharedTraceArena.create(
                DEFAULT_BATCH_SIZE, workers, charge_metrics=False
            ).close()
        )
        context = default_mp_context()

        def spawn_probe() -> None:
            process = context.Process(target=_noop)
            with fork_lock():
                process.start()
            process.join()

        fixed = arena_cost + workers * _timed_seconds(spawn_probe)
        saving = per_access * (1.0 - 1.0 / workers)
        crossover = int(fixed / max(saving, 1e-12))
    except Exception:  # pragma: no cover - calibration must never fail hard
        crossover = DEFAULT_CROSSOVER
    crossover = max(CROSSOVER_FLOOR, min(CROSSOVER_CEIL, crossover))
    _CALIBRATED[key] = crossover
    return crossover


def _timed_seconds(action: Callable[[], object]) -> float:
    start = time.perf_counter()
    action()
    return time.perf_counter() - start


class ShardedCacheSimulator:
    """A drop-in cache for ``AddressSampler.run_batched``, sharded over
    worker processes with a shared-memory data plane.

    Duck-types the slice of :class:`SetAssociativeCache` the batched
    sampler uses — ``access_batch`` / ``stats`` / ``flush_metrics`` /
    ``geometry`` — while farming the per-set state machines out to one
    process per shard.  Workers and the arena are created lazily on
    first access and must be released with :meth:`close` (or a ``with``
    block); close unlinks the shared segment even when a worker died
    mid-batch.

    With ``record_misses=True`` the simulator additionally accumulates
    each shard's miss set indices at their global miss ordinals as a
    byproduct of the scatter (reusing the worker-computed miss masks),
    so :meth:`rcd_analysis` yields the full RCD analysis with no second
    simulation pass.
    """

    def __init__(
        self,
        geometry: Optional[CacheGeometry] = None,
        policy: str = "lru",
        seed: int = 0,
        workers: int = 2,
        mp_context: Any = None,
        record_misses: bool = False,
    ) -> None:
        self.geometry = geometry or CacheGeometry()
        self.policy_name = policy.lower()
        self.seed = seed
        self.bounds = shard_boundaries(self.geometry.num_sets, workers)
        self._highs = np.asarray(
            [high for _, high in self.bounds], dtype=np.int64
        )
        self._context = mp_context or default_mp_context()
        self._shards: Optional[List[tuple]] = None  # [(process, conn), ...]
        self._arena: Optional[SharedTraceArena] = None
        self._totals = [(0, 0, 0, 0, 0)] * len(self.bounds)
        self._flushed = (0, 0, 0, 0, 0)
        self._stats_cache: Optional[CacheStats] = None
        self._bytes_shipped = 0
        self._bytes_flushed = 0
        self._batches = 0
        self._batches_flushed = 0
        self.record_misses = record_misses
        self._miss_sets: List[List[np.ndarray]] = [[] for _ in self.bounds]
        self._miss_positions: List[List[np.ndarray]] = [
            [] for _ in self.bounds
        ]
        self._miss_total = 0

    @property
    def workers(self) -> int:
        """Actual shard/worker count (may be below the requested K)."""
        return len(self.bounds)

    @property
    def bytes_shipped(self) -> int:
        """Cumulative pipe bytes moved (control traffic, both ways)."""
        return self._bytes_shipped

    def _ensure_pool(self, capacity_hint: int) -> None:
        if self._shards is not None:
            return
        arena = SharedTraceArena.create(
            max(int(capacity_hint), DEFAULT_BATCH_SIZE), len(self.bounds)
        )
        self._arena = arena
        shards = []
        for index in range(len(self.bounds)):
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    self.geometry,
                    self.policy_name,
                    self.seed,
                    arena.name,
                    arena.capacity,
                    arena.workers,
                    index,
                ),
                daemon=True,
            )
            # Forks serialize against tracker-touching segment ops; see
            # fork_lock.  A concurrent thread mid-attach at fork time
            # would hand the child a dead-locked tracker.
            with fork_lock():
                process.start()
            child_conn.close()
            shards.append((process, parent_conn))
        self._shards = shards

    def _ensure_capacity(self, count: int) -> None:
        """Grow the arena when a batch (e.g. after line splitting)
        exceeds its record capacity, remapping every worker."""
        arena = self._arena
        if count <= arena.capacity:
            return
        grown = SharedTraceArena.create(
            max(int(count), arena.capacity * 2), arena.workers
        )
        for _, conn in self._shards:
            self._send(conn, ("remap", grown.name, grown.capacity))
        # Unlinking while workers still hold the old mapping is safe
        # (POSIX keeps pages until the last map drops); pipe FIFO order
        # guarantees each worker remaps before its next batch.
        arena.close()
        self._arena = grown

    # -- control-plane pipe traffic (exact byte accounting) --------------

    def _send(self, conn: Any, message: tuple) -> None:
        payload = pickle.dumps(message)
        try:
            conn.send_bytes(payload)
        except (BrokenPipeError, OSError) as exc:
            raise SamplingError(
                f"shard worker pipe closed mid-{message[0]} "
                "(worker died?)"
            ) from exc
        self._bytes_shipped += len(payload)

    def _recv(self, index: int, process: Any, conn: Any) -> tuple:
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise SamplingError(
                f"shard worker {index} (sets "
                f"{self.bounds[index][0]}..{self.bounds[index][1] - 1}) "
                f"died mid-batch (exit code {process.exitcode})"
            ) from exc
        self._bytes_shipped += len(payload)
        return pickle.loads(payload)

    # -- SetAssociativeCache-compatible surface --------------------------

    def access_batch(
        self, batch: TraceBatch, *, split_lines: bool = False
    ) -> BatchResult:
        """Sharded :meth:`SetAssociativeCache.access_batch`."""
        addresses = batch.address
        ips = batch.ip
        if split_lines:
            addresses, ips = split_line_straddlers(
                self.geometry, addresses, ips, batch.size
            )
        result = self.access_arrays(addresses, ips)
        self.flush_metrics()
        return result

    def access_arrays(
        self, addresses: np.ndarray, ips: np.ndarray
    ) -> BatchResult:
        """Run one batch's columns through the shared arena and merge.

        The columns and the shard-partitioned position array are written
        to the arena once; workers receive only ``(offset, count)``
        descriptors.  Sends are issued to every worker before any reply
        is awaited, so shards simulate concurrently; the parent never
        sends batch N+1 before collecting all of batch N, which bounds
        result-region reuse and rules out send/recv deadlock.
        """
        geometry = self.geometry
        set_idx = geometry.set_indices(addresses)
        tags = geometry.tags(addresses)
        count = int(addresses.size)
        hit = np.zeros(count, dtype=bool)
        cold = np.zeros(count, dtype=bool)
        evicted = np.zeros(count, dtype=bool)
        evicted_tag = np.zeros(count, dtype=np.uint64)
        result = BatchResult(hit, set_idx, tags, evicted, evicted_tag, cold)
        if not count:
            return result

        self._ensure_pool(count)
        self._ensure_capacity(count)
        arena = self._arena
        np.copyto(arena.address[:count], addresses)
        np.copyto(arena.ip[:count], ips)
        order, offsets = _partition_by_shard(set_idx, self._highs)
        np.copyto(arena.positions[:count], order)

        for index, (_, conn) in enumerate(self._shards):
            self._send(
                conn,
                (
                    "batch",
                    int(offsets[index]),
                    int(offsets[index + 1] - offsets[index]),
                ),
            )
        for index, (process, conn) in enumerate(self._shards):
            reply = self._recv(index, process, conn)
            tag_count, totals = reply[1], reply[2]
            shard_count = int(offsets[index + 1] - offsets[index])
            positions = order[offsets[index] : offsets[index + 1]]
            flags = arena.flags(index)[:shard_count]
            hit[positions] = (flags & 1) != 0
            cold[positions] = (flags & 2) != 0
            shard_evicted = (flags & 4) != 0
            evicted[positions] = shard_evicted
            if tag_count:
                evicted_tag[positions[shard_evicted]] = arena.tags(index)[
                    :tag_count
                ]
            self._totals[index] = totals
        self._batches += 1
        if self.record_misses:
            self._record_batch_misses(set_idx, hit, order, offsets)
        self._stats_cache = None
        return result

    def _record_batch_misses(
        self,
        set_idx: np.ndarray,
        hit: np.ndarray,
        order: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        """Accumulate per-shard miss columns from this batch's results.

        Reuses the worker-computed miss masks (``~hit``) — no second
        simulation or set-index pass.  Positions are *global miss
        ordinals* (index within the whole run's miss sequence), which is
        what per-shard RCD pieces need to merge back into the exact
        global analysis; they are derived from a batch-local cumsum plus
        the running total, data only the parent holds.
        """
        miss_mask = ~hit
        ordinals = np.cumsum(miss_mask, dtype=np.int64)
        batch_misses = int(ordinals[-1]) if ordinals.size else 0
        ordinals += self._miss_total - 1
        for index in range(len(self.bounds)):
            positions = order[offsets[index] : offsets[index + 1]]
            miss_positions = positions[miss_mask[positions]]
            if miss_positions.size:
                self._miss_sets[index].append(
                    set_idx[miss_positions].astype(np.int64)
                )
                self._miss_positions[index].append(ordinals[miss_positions])
        self._miss_total += batch_misses

    def rcd_analysis(self) -> RcdArrayAnalysis:
        """RCD analysis from the miss columns recorded during simulate.

        Requires ``record_misses=True``; merges the per-shard pieces on
        global miss ordinal, exactly like
        :meth:`ShardedBackend.rcd_from_set_sequence` — but without ever
        re-entering the simulate pass.
        """
        if not self.record_misses:
            raise SamplingError(
                "rcd_analysis() needs record_misses=True at construction"
            )
        pieces = []
        empty = np.empty(0, dtype=np.int64)
        for index in range(len(self.bounds)):
            if self._miss_sets[index]:
                pieces.append(
                    compute_rcd_arrays(
                        np.concatenate(self._miss_sets[index]),
                        positions=np.concatenate(self._miss_positions[index]),
                    )
                )
            else:
                pieces.append((empty, empty, empty))
        sets, rcds, positions = merge_rcd_pieces(pieces)
        return RcdArrayAnalysis(
            num_sets=self.geometry.num_sets,
            set_index=sets,
            rcd=rcds,
            position=positions,
            total_misses=self._miss_total,
        )

    @property
    def stats(self) -> CacheStats:
        """Merged stats across shards (field-wise sums; cached per batch)."""
        if self._stats_cache is not None:
            return self._stats_cache
        if self._shards is None:
            merged = CacheStats(geometry=self.geometry)
        else:
            for _, conn in self._shards:
                self._send(conn, ("stats",))
            parts = [
                self._recv(index, process, conn)
                for index, (process, conn) in enumerate(self._shards)
            ]
            merged = parts[0]
            for part in parts[1:]:
                merged = merged.merge(part)
        self._stats_cache = merged
        return merged

    def flush_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Delta high-water-mark flush over the merged shard totals.

        Same scheme as :meth:`SetAssociativeCache.flush_metrics`, driven
        by the cumulative totals each worker reports with every batch —
        no extra IPC round-trip, and per-run ``cache.*`` counter totals
        identical to the single-process engines.  Also charges the
        sharded data plane's own telemetry: ``engine.sharded.ipc.
        bytes_shipped`` (exact control-pipe bytes, both directions) and
        ``engine.sharded.batches``.
        """
        registry = registry if registry is not None else get_registry()
        if not registry.enabled:
            return
        totals = tuple(
            sum(shard_totals[index] for shard_totals in self._totals)
            for index in range(5)
        )
        names = (
            "cache.accesses",
            "cache.hits",
            "cache.misses",
            "cache.evictions",
            "cache.cold_misses",
        )
        for name, new, old in zip(names, totals, self._flushed):
            if new != old:
                registry.counter(name).inc(new - old)
        self._flushed = totals
        if self._bytes_shipped != self._bytes_flushed:
            registry.counter("engine.sharded.ipc.bytes_shipped").inc(
                self._bytes_shipped - self._bytes_flushed
            )
            self._bytes_flushed = self._bytes_shipped
        if self._batches != self._batches_flushed:
            registry.counter("engine.sharded.batches").inc(
                self._batches - self._batches_flushed
            )
            self._batches_flushed = self._batches

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down and unlink the arena (idempotent).

        Safe after worker crashes: close/join errors never skip the
        arena unlink, so no segment outlives the simulator."""
        shards, self._shards = self._shards, None
        if shards is not None:
            for _, conn in shards:
                try:
                    conn.send_bytes(pickle.dumps(("close",)))
                except (BrokenPipeError, OSError):
                    pass
                conn.close()
            for process, _ in shards:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(timeout=1.0)
        arena, self._arena = self._arena, None
        if arena is not None:
            arena.close()

    def __enter__(self) -> "ShardedCacheSimulator":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort leak guard
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass


class ShardedBackend(EngineBackend):
    """Multiprocess engine: contiguous set shards, one worker each.

    Args:
        workers: Shard/worker count; ``None`` (default) uses the host's
            usable CPU count.  Clamped to ``num_sets`` at run time.
        crossover: Known trace lengths below this fall back to the
            batched engine (process startup + arena setup dominates).
            ``None`` (default) auto-calibrates the threshold from
            measured per-access and fixed costs on first use
            (:func:`calibrated_crossover`); traces of unknown length
            (generators) are assumed large either way.
        rcd_crossover: Miss sequences below this compute their RCD shards
            serially (the merge is identical; only wall-clock differs).
        mp_context: Explicit multiprocessing context (tests use this).

    Sharded deliberately does **not** declare the ``"windowed"``
    capability: streaming windowed analysis is a sequential scan whose
    per-window state fits in cache, so per-set fan-out buys nothing and
    the arena setup would be pure overhead.  ``windowed_phases`` falls
    back to the chunked columnar path via the base implementation, which
    records the decision (``engine.sharded.windowed_fallback`` counter,
    ``fallback_from`` in the resulting timeline).
    """

    name = "sharded"
    capabilities = frozenset({"columnar", "parallel", "zero-copy"})

    def __init__(
        self,
        workers: Optional[int] = None,
        crossover: Optional[int] = None,
        rcd_crossover: int = DEFAULT_RCD_CROSSOVER,
        mp_context: Any = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise SamplingError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.crossover = crossover if crossover is None else int(crossover)
        self.rcd_crossover = rcd_crossover
        self.mp_context = mp_context

    def configure(self, **options: Any) -> "ShardedBackend":
        known = {"workers", "crossover", "rcd_crossover"}
        unknown = sorted(set(options) - known)
        if unknown:
            raise SamplingError(
                f"engine {self.name!r} accepts no option(s): "
                + ", ".join(unknown)
            )
        return ShardedBackend(
            workers=options.get("workers", self.workers),
            crossover=options.get("crossover", self.crossover),
            rcd_crossover=int(
                options.get("rcd_crossover", self.rcd_crossover)
            ),
            mp_context=self.mp_context,
        )

    def worker_count(self, num_sets: int) -> int:
        """Effective shard count for a geometry."""
        workers = (
            self.workers if self.workers is not None else available_workers()
        )
        return max(1, min(int(workers), int(num_sets)))

    def effective_crossover(
        self, workers: int, geometry: Optional[CacheGeometry] = None
    ) -> int:
        """The crossover in force: pinned value or per-host calibration."""
        if self.crossover is not None:
            return self.crossover
        return calibrated_crossover(workers, geometry)

    def _fall_back(self, geometry: CacheGeometry, trace: Any) -> bool:
        workers = self.worker_count(geometry.num_sets)
        if workers <= 1:
            return True
        length = known_trace_length(trace)
        return length is not None and length < self.effective_crossover(
            workers, geometry
        )

    def sample(
        self,
        sampler: AddressSampler,
        trace: Any,
        budget: Optional[SamplingBudget] = None,
    ) -> SamplingResult:
        if self._fall_back(sampler.geometry, trace):
            return get_backend("batched").sample(sampler, trace, budget=budget)
        simulator = ShardedCacheSimulator(
            sampler.geometry,
            policy=sampler.policy,
            workers=self.worker_count(sampler.geometry.num_sets),
            mp_context=self.mp_context,
        )
        with simulator:
            return sampler.run_batched(trace, budget=budget, cache=simulator)

    def simulate(
        self,
        trace: Any,
        geometry: Optional[CacheGeometry] = None,
        policy: str = "lru",
        seed: int = 0,
        split_lines: bool = True,
        batch_size: Optional[int] = None,
    ) -> CacheStats:
        geometry = geometry or CacheGeometry()
        if self._fall_back(geometry, trace):
            return get_backend("batched").simulate(
                trace,
                geometry=geometry,
                policy=policy,
                seed=seed,
                split_lines=split_lines,
                batch_size=batch_size,
            )
        simulator = ShardedCacheSimulator(
            geometry,
            policy=policy,
            seed=seed,
            workers=self.worker_count(geometry.num_sets),
            mp_context=self.mp_context,
        )
        with simulator:
            for batch in as_batches(trace, batch_size or DEFAULT_BATCH_SIZE):
                simulator.access_batch(batch, split_lines=split_lines)
            return simulator.stats

    def simulate_with_rcd(
        self,
        trace: Any,
        geometry: Optional[CacheGeometry] = None,
        policy: str = "lru",
        seed: int = 0,
        split_lines: bool = False,
        batch_size: Optional[int] = None,
    ) -> Tuple[CacheStats, RcdArrayAnalysis]:
        """One fused pass: simulate the trace AND derive the exact RCD
        analysis from the same run's miss masks.

        Previously a sharded exact-RCD measurement simulated once for
        stats and then re-derived the miss sequence in a second pass
        (ROADMAP item 1's recompute complaint); here the per-shard miss
        columns accumulate during the (single) simulate, so the analysis
        is free.  ``split_lines`` defaults to ``False`` — the semantics
        of :class:`~repro.core.exact.ExactRcdMeasurer`.
        """
        geometry = geometry or CacheGeometry()
        if self._fall_back(geometry, trace):
            cache = SetAssociativeCache(geometry, policy=policy, seed=seed)
            miss_sets: List[np.ndarray] = []
            for batch in as_batches(trace, batch_size or DEFAULT_BATCH_SIZE):
                result = cache.access_batch(batch, split_lines=split_lines)
                miss_sets.append(result.set_index[~result.hit].astype(np.int64))
            sequence = (
                np.concatenate(miss_sets)
                if miss_sets
                else np.empty(0, dtype=np.int64)
            )
            return cache.stats, RcdArrayAnalysis.from_set_sequence(
                sequence, geometry.num_sets
            )
        simulator = ShardedCacheSimulator(
            geometry,
            policy=policy,
            seed=seed,
            workers=self.worker_count(geometry.num_sets),
            mp_context=self.mp_context,
            record_misses=True,
        )
        with simulator:
            for batch in as_batches(trace, batch_size or DEFAULT_BATCH_SIZE):
                simulator.access_batch(batch, split_lines=split_lines)
            return simulator.stats, simulator.rcd_analysis()

    def rcd_from_addresses(
        self, addresses: Any, geometry: CacheGeometry
    ) -> RcdArrayAnalysis:
        if not isinstance(addresses, np.ndarray):
            addresses = np.fromiter(
                (int(address) for address in addresses), dtype=np.uint64
            )
        sequence = geometry.set_indices(addresses).astype(np.int64)
        return self.rcd_from_set_sequence(sequence, geometry.num_sets)

    def rcd_from_set_sequence(
        self, set_sequence: Sequence[int], num_sets: int
    ) -> RcdArrayAnalysis:
        """Sharded RCD: per-shard columns at global positions, merged.

        Each shard computes observations for *its* sets only, carrying
        the misses' global sequence positions; concatenating the pieces
        and sorting on position reproduces the global analysis exactly
        (RCDs pair consecutive misses of one set, and each set lives
        wholly inside one shard).  The partition is a single stable
        argsort over shard ids, not one boolean-mask scan per shard.
        """
        sequence = np.asarray(set_sequence, dtype=np.int64)
        workers = self.worker_count(num_sets)
        if workers <= 1:
            return RcdArrayAnalysis.from_set_sequence(sequence, num_sets)
        bounds = shard_boundaries(num_sets, workers)
        highs = np.asarray([high for _, high in bounds], dtype=np.int64)
        order, offsets = _partition_by_shard(sequence, highs)
        tasks = []
        for index in range(len(bounds)):
            positions = order[offsets[index] : offsets[index + 1]]
            tasks.append((sequence[positions], positions))
        if sequence.size >= self.rcd_crossover:
            context = self.mp_context or default_mp_context()
            with context.Pool(processes=workers) as pool:
                pieces = pool.starmap(_rcd_shard, tasks)
        else:
            pieces = [_rcd_shard(subseq, pos) for subseq, pos in tasks]
        sets, rcds, positions = merge_rcd_pieces(pieces)
        return RcdArrayAnalysis(
            num_sets=num_sets,
            set_index=sets,
            rcd=rcds,
            position=positions,
            total_misses=int(sequence.size),
        )
