"""The CCProf service daemon: asyncio server + bounded worker pool.

Life of a job::

    client ──line──▶ connection task ──admit──▶ queue ──▶ worker thread
                          │   ▲                              │
                      journal RECEIVED                 journal RUNNING
                          │   │                              │
                          ◀───┴── response line ◀── journal COMPLETED/
                                                     DEGRADED/FAILED

Every transition is journaled write-ahead, so the invariant the chaos
suite asserts — *every accepted job resolves exactly once* — survives
injected worker kills (retried up to ``max_attempts``, then failed
cleanly) and daemon restarts (non-terminal journal entries are resumed or
failed on startup, never dropped).

Concurrency model: the event loop owns all bookkeeping (admission
counters, journal, futures); only ``JobExecutor.execute`` runs on worker
threads via ``asyncio.to_thread``.  Slow clients are bounded by a read
deadline per connection; oversized lines are rejected by the stream limit
before they buffer.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    ServiceError,
    WorkerCrashError,
)
from repro.obs.manifest import RunManifest, git_revision
from repro.obs.metrics import get_registry
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.executor import JobExecutor, KillInjector, response_for
from repro.service.journal import JobJournal, JobState
from repro.service.protocol import (
    MAX_LINE_BYTES,
    JobRequest,
    JobResponse,
    JobStatus,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon configuration.

    Attributes:
        socket_path: Unix-domain socket the daemon listens on.
        workers: Worker-pool size (concurrent jobs in execution).
        admission: Queue bounds, quotas, breaker settings.
        default_deadline_ms: Per-request deadline when the request names
            none; becomes the run's watchdog budget *and* bounds queue
            wait (a job that waited out its whole deadline fails with
            ``deadline-exceeded`` instead of running late).
        default_max_accesses: Default simulation budget (None=unlimited).
        max_attempts: Execution attempts per job before a worker-crash
            failure becomes terminal.
        read_timeout: Seconds a connection may sit mid-request before it
            is dropped as a slow client.
        journal_path: Job journal location (None disables journaling).
        journal_fsync: fsync every journal append (daemon default off;
            the CLI turns it on).
        manifest_dir: When set, one RunManifest is written per terminal
            job under this directory.
        kill_rate / kill_seed / kill_max: Chaos hook — injected
            worker-kill probability per attempt, seeded for
            reproducibility, with an optional total-kill cap.
    """

    socket_path: str = "ccprof.sock"
    workers: int = 4
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    default_deadline_ms: int = 30_000
    default_max_accesses: Optional[int] = None
    max_attempts: int = 3
    read_timeout: float = 5.0
    journal_path: Optional[str] = None
    journal_fsync: bool = False
    manifest_dir: Optional[str] = None
    kill_rate: float = 0.0
    kill_seed: int = 0
    kill_max: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.read_timeout <= 0:
            raise ServiceError("read_timeout must be positive")


@dataclass
class _PendingJob:
    """One accepted job in flight inside the daemon."""

    request: JobRequest
    degrade: bool
    admitted_at: float
    future: "asyncio.Future[JobResponse]"
    attempts: int = 0
    #: Set by ``_finish`` — the exactly-once guard is per in-flight job,
    #: so a tenant may legitimately reuse a job id on a later submission.
    resolved: bool = False

    @property
    def key(self) -> str:
        """Journal key: tenant-scoped so ids never collide across tenants."""
        return f"{self.request.tenant}/{self.request.id}"


class CCProfService:
    """The daemon.  ``async with CCProfService(config) as svc: ...``.

    All state mutation happens on the event loop; worker threads only run
    the executor.  The service object is single-use: start once, stop once.
    """

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        *,
        executor: Optional[JobExecutor] = None,
    ) -> None:
        self.config = config
        self.admission = AdmissionController(config.admission)
        self.journal = (
            JobJournal(config.journal_path, fsync=config.journal_fsync)
            if config.journal_path
            else None
        )
        injector = (
            KillInjector(
                config.kill_rate,
                seed=config.kill_seed,
                max_kills=config.kill_max,
            )
            if config.kill_rate > 0.0
            else None
        )
        self.executor = executor or JobExecutor(
            default_deadline_ms=config.default_deadline_ms,
            default_max_accesses=config.default_max_accesses,
            kill_injector=injector,
        )
        self.kill_injector = self.executor.kill_injector
        self._queue: "asyncio.Queue[_PendingJob]" = asyncio.Queue()
        self._workers: List[asyncio.Task] = []
        self._connections: "set[asyncio.Task]" = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = False
        self._revision: Optional[str] = None
        self._inflight: Dict[str, _PendingJob] = {}
        #: Journal key -> most recent terminal status.  Assertion surface
        #: for tests and the chaos harness only; exactly-once resolution
        #: is enforced per in-flight job (``_PendingJob.resolved``), never
        #: against this history, so reused job ids stay first-class.
        self.resolved: Dict[str, str] = {}

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Recover the journal, bind the socket, start the worker pool."""
        self._recover_previous_run()
        self._workers = [
            asyncio.create_task(self._worker(index), name=f"ccprof-worker-{index}")
            for index in range(self.config.workers)
        ]
        path = Path(self.config.socket_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection,
            path=str(path),
            limit=MAX_LINE_BYTES,
            # The default accept backlog (100) refuses bursts the admission
            # controller should be the one to shed; admission owns overload.
            backlog=1024,
        )
        get_registry().gauge("service.workers.pool").set(self.config.workers)

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, resolve what remains.

        Queued jobs that never ran are failed cleanly (``shutdown``);
        running jobs are given a grace period to finish.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Fail everything still queued, cleanly.
        while not self._queue.empty():
            job = self._queue.get_nowait()
            self.admission.job_started()  # dequeue accounting
            self._resolve_failed(
                job, ServiceError("daemon shutting down"), state=JobState.FAILED
            )
        # Let running jobs finish, then retire the pool.
        for _ in range(200):
            if self.admission.running == 0:
                break
            await asyncio.sleep(0.05)
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        # Retire lingering connections (handlers swallow the cancel and
        # run their own cleanup, so nothing ends in a cancelled state).
        for connection in list(self._connections):
            connection.cancel()
        if self._connections:
            await asyncio.gather(
                *list(self._connections), return_exceptions=True
            )
        if self.journal is not None:
            self.journal.close()
        socket_path = Path(self.config.socket_path)
        if socket_path.exists():
            socket_path.unlink()

    async def __aenter__(self) -> "CCProfService":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's main loop)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- restart recovery ----------------------------------------------

    def _recover_previous_run(self) -> None:
        """Resolve jobs a previous daemon left in flight.

        ``received`` jobs (journaled but never started) are *resumed*: the
        journaled request is resubmitted to the queue.  ``running`` /
        ``crashed`` jobs cannot be trusted to re-run exactly-once semantics
        blind, so they are failed cleanly with ``daemon-restart``.
        """
        if self.journal is None or not Path(self.config.journal_path).exists():
            return
        registry = get_registry()
        unresolved = JobJournal.unresolved(self.config.journal_path)
        for key, record in sorted(unresolved.items()):
            if record.state == JobState.RECEIVED and "request" in record.extra:
                try:
                    request = JobRequest.from_dict(dict(record.extra["request"]))
                except ProtocolError:
                    request = None
                if request is not None:
                    job = _PendingJob(
                        request=request,
                        degrade=bool(record.extra.get("degrade", False)),
                        admitted_at=time.monotonic(),
                        future=asyncio.get_running_loop().create_future(),
                    )
                    self.admission.resume(request.tenant)
                    self._inflight[key] = job
                    self._queue.put_nowait(job)
                    registry.counter("service.jobs.resumed").inc()
                    continue
            self.journal.record(
                record.job,
                record.tenant,
                JobState.FAILED,
                error="daemon-restart",
                message="job was in flight when the previous daemon died",
            )
            self.resolved[key] = JobStatus.FAILED
            registry.counter("service.jobs.recovered_failed").inc()

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        registry = get_registry()
        registry.counter("service.connections").inc()
        write_lock = asyncio.Lock()
        response_tasks: List[asyncio.Task] = []
        try:
            await self._read_requests(reader, writer, write_lock, response_tasks)
        except asyncio.CancelledError:
            pass  # daemon shutdown: stop reading, still flush what resolved
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                if response_tasks:
                    await asyncio.gather(*response_tasks, return_exceptions=True)
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_requests(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response_tasks: List[asyncio.Task],
    ) -> None:
        registry = get_registry()
        while not self._stopping:
            try:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.config.read_timeout
                )
            except asyncio.TimeoutError:
                if any(not done.done() for done in response_tasks):
                    # Not a slow client — the connection is idle because
                    # it is waiting on its own in-flight jobs.
                    continue
                registry.counter("service.clients.slow_dropped").inc()
                break
            except ValueError:
                # Stream limit exceeded: oversized request line.
                registry.counter("service.requests.oversized").inc()
                await self._write(
                    writer, write_lock, self._protocol_reject(
                        "", "", f"request line exceeds {MAX_LINE_BYTES} bytes"
                    )
                )
                break
            if not line:
                break
            if not line.strip():
                continue
            response, job = self._admit_line(line)
            if response is not None:
                await self._write(writer, write_lock, response)
                continue
            # Accepted: answer whenever the job resolves, without
            # blocking this connection's next request (pipelining).
            response_tasks.append(
                asyncio.create_task(
                    self._respond_when_done(job, writer, write_lock)
                )
            )

    def _admit_line(
        self, line: bytes
    ) -> "tuple[Optional[JobResponse], Optional[_PendingJob]]":
        """Parse + admit one request line.

        Returns ``(rejection, None)`` to answer immediately, or
        ``(None, job)`` when the job was accepted and queued.
        """
        registry = get_registry()
        try:
            request = JobRequest.decode(line.rstrip(b"\n"))
        except ProtocolError as exc:
            registry.counter("service.requests.malformed").inc()
            return self._protocol_reject("", "", str(exc)), None
        try:
            degrade = self.admission.admit(request.tenant)
        except AdmissionRejectedError as exc:
            return (
                JobResponse(
                    id=request.id,
                    tenant=request.tenant,
                    status=JobStatus.REJECTED,
                    error={
                        "family": exc.code,
                        "reason": exc.reason,
                        "message": str(exc),
                    },
                    retry_after_ms=max(1, int(exc.retry_after * 1000)),
                ),
                None,
            )
        job = _PendingJob(
            request=request,
            degrade=degrade,
            admitted_at=time.monotonic(),
            future=asyncio.get_running_loop().create_future(),
        )
        if self.journal is not None:
            self.journal.record(
                job.key,
                request.tenant,
                JobState.RECEIVED,
                request=request.to_dict(),
                degrade=degrade,
            )
        self._inflight[job.key] = job
        self._queue.put_nowait(job)
        return None, job

    @staticmethod
    def _protocol_reject(job_id: str, tenant: str, message: str) -> JobResponse:
        return JobResponse(
            id=job_id,
            tenant=tenant,
            status=JobStatus.REJECTED,
            error={"family": "service", "reason": "protocol", "message": message},
        )

    async def _respond_when_done(
        self,
        job: _PendingJob,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        response = await job.future
        await self._write(writer, write_lock, response)

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter, lock: asyncio.Lock, response: JobResponse
    ) -> None:
        try:
            payload = response.encode()
        except ProtocolError as exc:
            # The result is too large for one wire line (e.g. a huge
            # conflicting-loops list).  Still answer — with a minimal
            # failure — instead of dropping the reply and leaving the
            # client to die of the read timeout.
            get_registry().counter("service.responses.oversized").inc()
            payload = JobResponse(
                id=response.id,
                tenant=response.tenant,
                status=JobStatus.FAILED,
                error={
                    "family": "service",
                    "reason": "oversized-response",
                    "message": f"result omitted: {exc}",
                },
                attempts=response.attempts,
            ).encode()
        try:
            async with lock:
                writer.write(payload)
                await writer.drain()
        except (ConnectionError, OSError):
            # Client went away; the job still resolved in the journal.
            get_registry().counter("service.responses.undeliverable").inc()

    # -- the worker pool ------------------------------------------------

    async def _worker(self, index: int) -> None:
        registry = get_registry()
        while True:
            job = await self._queue.get()
            self.admission.job_started()
            registry.gauge("service.workers.busy").add(1)
            try:
                await self._run_job(job)
            finally:
                registry.gauge("service.workers.busy").add(-1)
                self._queue.task_done()

    async def _run_job(self, job: _PendingJob) -> None:
        request = job.request
        registry = get_registry()
        deadline_s = (
            request.deadline_ms or self.config.default_deadline_ms
        ) / 1000.0
        waited = time.monotonic() - job.admitted_at
        if waited >= deadline_s:
            self._resolve_failed(
                job,
                DeadlineExceededError(
                    f"job spent {waited:.3f}s queued, past its "
                    f"{deadline_s:.3f}s deadline"
                ),
            )
            return
        job.attempts += 1
        if self.journal is not None:
            self.journal.record(
                job.key, request.tenant, JobState.RUNNING, attempt=job.attempts
            )
        started = time.monotonic()
        try:
            outcome = await asyncio.to_thread(
                self.executor.execute, request, degrade=job.degrade
            )
        except WorkerCrashError as crash:
            registry.counter("service.jobs.crashed").inc()
            if self.journal is not None:
                self.journal.record(
                    job.key,
                    request.tenant,
                    JobState.CRASHED,
                    attempt=job.attempts,
                    error=str(crash),
                )
            if job.attempts < self.config.max_attempts:
                if self._stopping:
                    # stop() already drained the queue and is about to
                    # cancel the workers; a requeued job would never
                    # resolve.  Fail it cleanly instead of retrying.
                    self._resolve_failed(
                        job,
                        ServiceError(
                            "daemon shutting down before the crashed job "
                            "could be retried"
                        ),
                    )
                    return
                # Requeue: the job is retried by the next free worker.
                self.admission.job_requeued()
                registry.counter("service.jobs.retried").inc()
                self._queue.put_nowait(job)
                return
            self._resolve_failed(job, crash)
            return
        except ReproError as error:
            self._resolve_failed(job, error)
            return
        except Exception as error:  # noqa: BLE001 — worker must not die
            registry.counter("service.jobs.internal_errors").inc()
            self._resolve_failed(job, ServiceError(f"internal error: {error}"))
            return
        elapsed_ms = (time.monotonic() - started) * 1000.0
        response = response_for(
            request, outcome, elapsed_ms=elapsed_ms, attempts=job.attempts
        )
        self._finish(job, response, failed=False)
        registry.histogram("service.request.latency_us").observe(
            int(elapsed_ms * 1000)
        )

    # -- resolution -----------------------------------------------------

    def _resolve_failed(
        self,
        job: _PendingJob,
        error: ReproError,
        *,
        state: str = JobState.FAILED,
    ) -> None:
        reason = getattr(error, "reason", error.code)
        response = JobResponse(
            id=job.request.id,
            tenant=job.request.tenant,
            status=JobStatus.FAILED,
            error={
                "family": error.code,
                "reason": reason,
                "message": str(error),
            },
            attempts=job.attempts,
        )
        self._finish(job, response, failed=True, state=state)

    def _finish(
        self,
        job: _PendingJob,
        response: JobResponse,
        *,
        failed: bool,
        state: Optional[str] = None,
    ) -> None:
        """Journal the terminal state and resolve the client future once."""
        registry = get_registry()
        terminal = state or {
            JobStatus.COMPLETED: JobState.COMPLETED,
            JobStatus.DEGRADED: JobState.DEGRADED,
            JobStatus.FAILED: JobState.FAILED,
        }[response.status]
        if job.resolved:
            # Exactly-once guard: resolving this job twice is a bug worth
            # counting.  Guarded per in-flight job, not per journal key — a
            # tenant reusing an id later must not be treated as a duplicate.
            registry.counter("service.jobs.duplicate_resolutions").inc()
            return
        job.resolved = True
        if self.journal is not None:
            extra: Dict[str, object] = {"status": response.status}
            if response.error is not None:
                extra["error"] = response.error.get("reason", "")
            self.journal.record(
                job.key, job.request.tenant, terminal, **extra
            )
        self.resolved[job.key] = response.status
        self._inflight.pop(job.key, None)
        self.admission.job_finished(job.request.tenant, failed=failed)
        registry.counter(f"service.jobs.{response.status}").inc()
        registry.counter(
            f"service.tenant.{job.request.tenant}.{response.status}"
        ).inc()
        if not job.future.done():
            job.future.set_result(response)
        self._write_job_manifest(job, response)

    def _write_job_manifest(
        self, job: _PendingJob, response: JobResponse
    ) -> None:
        if self.config.manifest_dir is None:
            return
        directory = Path(self.config.manifest_dir)
        directory.mkdir(parents=True, exist_ok=True)
        safe = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in job.key
        )
        if self._revision is None:
            # One subprocess per daemon, not one per job manifest.
            self._revision = git_revision()
        manifest = RunManifest(
            revision=self._revision,
            command=f"service.{job.request.kind}",
            workload=job.request.workload,
            seed=job.request.seed,
            period=float(job.request.period),
            config={
                "tenant": job.request.tenant,
                "status": response.status,
                "attempts": response.attempts,
                "degraded_reason": response.degraded_reason,
            },
            sampling={"elapsed_ms": response.elapsed_ms},
            outputs={},
        )
        manifest.save(directory / f"{safe}.manifest.json")
