"""Service wire protocol: newline-delimited JSON over a local socket.

One request per line, one response per line, matched by client-chosen
``id``.  A connection may pipeline any number of requests; responses are
written as jobs finish, which may reorder them relative to submission —
clients correlate on ``id``, never on arrival order.

The protocol is deliberately boring: versioned flat JSON objects with
strict field validation and a hard line-length cap, because the daemon
must survive hostile inputs (oversized requests, binary garbage, slow
writers) without taking down neighbouring tenants.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ProtocolError

#: Wire protocol version; bumped on incompatible changes.
PROTOCOL_VERSION = 1

#: Hard cap on one request line (bytes).  Oversized lines are rejected
#: before parsing — the NDJSON analogue of an oversized trace upload.
MAX_LINE_BYTES = 64 * 1024

#: Job kinds the executor knows how to run.
JOB_KINDS = ("profile", "predict", "compare")

#: Terminal response statuses.  Every accepted job resolves to exactly one
#: of ``completed`` / ``degraded`` / ``failed``; ``rejected`` is the
#: admission-control answer for jobs that were never accepted.
class JobStatus:
    COMPLETED = "completed"
    DEGRADED = "degraded"
    FAILED = "failed"
    REJECTED = "rejected"

    ALL = (COMPLETED, DEGRADED, FAILED, REJECTED)
    TERMINAL = (COMPLETED, DEGRADED, FAILED)


def _require_str(record: Dict[str, object], key: str) -> str:
    value = record.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"request field {key!r} must be a non-empty string")
    if len(value) > 256:
        raise ProtocolError(f"request field {key!r} exceeds 256 characters")
    return value


def _optional_int(record: Dict[str, object], key: str) -> Optional[int]:
    """``record[key]`` as an int, ``None`` when absent/null."""
    value = record.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"field {key!r} must be an integer")
    return value


def _int_or(record: Dict[str, object], key: str, default: int) -> int:
    """``record[key]`` as an int, ``default`` when absent/null/zero-y."""
    value = _optional_int(record, key)
    return value if value else default


@dataclass(frozen=True)
class JobRequest:
    """One job submission.

    Attributes:
        id: Client-chosen identifier, unique per connection.
        tenant: Tenant the job is billed to (quotas, circuit breaker).
        kind: ``profile`` | ``predict`` | ``compare``.
        workload: Workload spec (``gemm``, ``adi:optimized``...).
        params: Sizing knobs forwarded to the workload factory (``n``...).
        seed: Sampler RNG seed.
        period: Mean sampling period (profile/compare).
        deadline_ms: Per-request deadline; ``None`` uses the service
            default.  The deadline becomes the run's watchdog budget.
        max_accesses: Optional simulation budget (watchdog
            ``max_accesses``); blowing it triggers degradation.
        engine: Optional engine-backend name for profile/compare
            simulation (``None`` uses the service default, ``batched``).
            Validated against the engine registry by the executor, so a
            daemon with extra backends registered accepts them without a
            protocol change.
        window: Optional streaming-analysis window (samples) for profile
            jobs.  When set, the executor runs the windowed streaming
            analysis over the profiled samples, reports per-window
            progress via ``service.jobs.window.*`` telemetry, and the
            result carries a timeline summary.  Older daemons ignore the
            field (``from_dict`` drops unknown keys), so setting it is
            wire-compatible.
    """

    id: str
    tenant: str
    kind: str
    workload: str
    params: Dict[str, int] = field(default_factory=dict)
    seed: int = 0
    period: int = 1212
    deadline_ms: Optional[int] = None
    max_accesses: Optional[int] = None
    engine: Optional[str] = None
    window: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ProtocolError(
                f"unknown job kind {self.kind!r}; known: {', '.join(JOB_KINDS)}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ProtocolError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )
        if self.max_accesses is not None and self.max_accesses < 1:
            raise ProtocolError(
                f"max_accesses must be >= 1, got {self.max_accesses}"
            )
        if self.engine is not None and (
            not isinstance(self.engine, str) or not self.engine
        ):
            raise ProtocolError("engine must be a non-empty string")
        if self.window is not None and self.window < 1:
            raise ProtocolError(
                f"window must be >= 1, got {self.window}"
            )

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (the wire layout)."""
        record: Dict[str, object] = {
            "v": PROTOCOL_VERSION,
            "id": self.id,
            "tenant": self.tenant,
            "kind": self.kind,
            "workload": self.workload,
            "seed": self.seed,
            "period": self.period,
        }
        if self.params:
            record["params"] = dict(self.params)
        if self.deadline_ms is not None:
            record["deadline_ms"] = self.deadline_ms
        if self.max_accesses is not None:
            record["max_accesses"] = self.max_accesses
        if self.engine is not None:
            record["engine"] = self.engine
        if self.window is not None:
            record["window"] = self.window
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "JobRequest":
        """Validate and build a request from a decoded JSON object."""
        if not isinstance(record, dict):
            raise ProtocolError("request must be a JSON object")
        version = record.get("v", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version!r} "
                f"(this daemon speaks v{PROTOCOL_VERSION})"
            )
        params = record.get("params", {})
        if not isinstance(params, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and not isinstance(v, bool)
            for k, v in params.items()
        ):
            raise ProtocolError("request field 'params' must map strings to ints")
        engine_value = record.get("engine")
        engine: Optional[str]
        if engine_value is None or isinstance(engine_value, str):
            engine = engine_value
        else:
            raise ProtocolError("request field 'engine' must be a string")
        return cls(
            id=_require_str(record, "id"),
            tenant=_require_str(record, "tenant"),
            kind=_require_str(record, "kind"),
            workload=_require_str(record, "workload"),
            params=dict(params),
            seed=_int_or(record, "seed", 0),
            period=_int_or(record, "period", 1212),
            deadline_ms=_optional_int(record, "deadline_ms"),
            max_accesses=_optional_int(record, "max_accesses"),
            engine=engine,
            window=_optional_int(record, "window"),
        )

    def encode(self) -> bytes:
        """One wire line (newline-terminated UTF-8)."""
        return encode_line(self.to_dict())

    @classmethod
    def decode(cls, line: bytes) -> "JobRequest":
        """Parse one wire line into a validated request."""
        return cls.from_dict(decode_line(line))


@dataclass(frozen=True)
class JobResponse:
    """The daemon's answer to one request.

    Attributes:
        id: Echoed request id.
        tenant: Echoed tenant (responses never cross tenants).
        status: One of :class:`JobStatus`.
        result: Kind-specific summary (samples, verdicts, victim sets).
        error: ``{"family", "reason", "message"}`` for failed/rejected.
        retry_after_ms: Backpressure hint on rejection.
        degraded_reason: Why the degradation ladder fired.
        confidence: Confidence note accompanying a degraded result.
        elapsed_ms: Server-side wall time for the job.
        attempts: Execution attempts (>1 means a worker crash was retried).
    """

    id: str
    tenant: str
    status: str
    result: Dict[str, object] = field(default_factory=dict)
    error: Optional[Dict[str, str]] = None
    retry_after_ms: Optional[int] = None
    degraded_reason: Optional[str] = None
    confidence: Optional[str] = None
    elapsed_ms: float = 0.0
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.status not in JobStatus.ALL:
            raise ProtocolError(f"unknown response status {self.status!r}")

    @property
    def resolved(self) -> bool:
        """True when the job was accepted and reached a terminal state."""
        return self.status in JobStatus.TERMINAL

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (the wire layout)."""
        record: Dict[str, object] = {
            "v": PROTOCOL_VERSION,
            "id": self.id,
            "tenant": self.tenant,
            "status": self.status,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "attempts": self.attempts,
        }
        if self.result:
            record["result"] = self.result
        if self.error is not None:
            record["error"] = self.error
        if self.retry_after_ms is not None:
            record["retry_after_ms"] = self.retry_after_ms
        if self.degraded_reason is not None:
            record["degraded_reason"] = self.degraded_reason
        if self.confidence is not None:
            record["confidence"] = self.confidence
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "JobResponse":
        """Build a response from a decoded JSON object."""
        if not isinstance(record, dict):
            raise ProtocolError("response must be a JSON object")
        result = record.get("result") or {}
        if not isinstance(result, dict):
            raise ProtocolError("response field 'result' must be an object")
        error_value = record.get("error")
        error: Optional[Dict[str, str]]
        if error_value is None or isinstance(error_value, dict):
            error = error_value
        else:
            raise ProtocolError("response field 'error' must be an object")
        elapsed = record.get("elapsed_ms", 0.0)
        if not isinstance(elapsed, (int, float)) or isinstance(elapsed, bool):
            raise ProtocolError("response field 'elapsed_ms' must be a number")
        attempts = record.get("attempts", 1)
        if not isinstance(attempts, int) or isinstance(attempts, bool):
            raise ProtocolError("response field 'attempts' must be an integer")
        degraded_reason = record.get("degraded_reason")
        confidence = record.get("confidence")
        return cls(
            id=str(record.get("id", "")),
            tenant=str(record.get("tenant", "")),
            status=str(record.get("status", "")),
            result=result,
            error=error,
            retry_after_ms=_optional_int(record, "retry_after_ms"),
            degraded_reason=(
                None if degraded_reason is None else str(degraded_reason)
            ),
            confidence=None if confidence is None else str(confidence),
            elapsed_ms=float(elapsed),
            attempts=attempts,
        )

    def encode(self) -> bytes:
        """One wire line (newline-terminated UTF-8)."""
        return encode_line(self.to_dict())

    @classmethod
    def decode(cls, line: bytes) -> "JobResponse":
        """Parse one wire line into a response."""
        return cls.from_dict(decode_line(line))


def encode_line(record: Dict[str, object]) -> bytes:
    """Serialize one protocol record as a compact NDJSON line."""
    blob = json.dumps(record, separators=(",", ":"), sort_keys=True)
    line = blob.encode("utf-8") + b"\n"
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"encoded record is {len(line)} bytes "
            f"(protocol limit {MAX_LINE_BYTES})"
        )
    return line


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one NDJSON line, enforcing the size cap before JSON parsing."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line is {len(line)} bytes "
            f"(protocol limit {MAX_LINE_BYTES})"
        )
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed request line: {exc}") from exc
    if not isinstance(record, dict):
        raise ProtocolError("request line must decode to a JSON object")
    return record
