"""The CCProf profiling service (``ccprof serve``).

The paper's pitch is that conflict detection is cheap enough to run
routinely; this package turns that into a production posture — a
long-running multi-tenant daemon that accepts profile/predict/compare jobs
over a local socket (newline-delimited JSON) and stays alive under
overload and partial failure:

- :mod:`repro.service.protocol` — the wire format: versioned request and
  response records with strict validation and size limits.
- :mod:`repro.service.journal` — crash-safe write-ahead job journal,
  checksummed like trace format v2; a daemon restart resolves every
  in-flight job instead of losing it.
- :mod:`repro.service.admission` — bounded queues, per-tenant quotas,
  explicit backpressure (reject-with-retry-after), and per-tenant circuit
  breakers.
- :mod:`repro.service.executor` — runs jobs against the pipeline with
  per-request deadlines derived from the watchdog budgets and a shared
  cross-job analysis-pass cache; degrades to the zero-trace static
  predictor rather than failing outright.
- :mod:`repro.service.daemon` — the asyncio server tying it together:
  bounded worker pool, slow-client read deadlines, journaling, graceful
  shutdown, restart recovery.
- :mod:`repro.service.client` — an asyncio/sync client that honours
  retry-after backpressure with a seeded retry RNG.
- :mod:`repro.service.chaos` — the load/chaos harness: hundreds of
  concurrent jobs with injected worker kills and slow clients, asserting
  p99 latency, exactly-once resolution, and zero cross-tenant leakage.

Everything is stdlib-only (asyncio + threads), consistent with the
repository's zero-new-dependencies rule.
"""

from repro.service.admission import AdmissionController, TenantCircuitBreaker
from repro.service.chaos import ChaosReport, LoadHarness
from repro.service.client import ServiceClient, submit_jobs
from repro.service.daemon import CCProfService, ServiceConfig
from repro.service.executor import JobExecutor, KillInjector
from repro.service.journal import JobJournal, JobState
from repro.service.protocol import JobRequest, JobResponse, JobStatus

__all__ = [
    "AdmissionController",
    "TenantCircuitBreaker",
    "CCProfService",
    "ServiceConfig",
    "ChaosReport",
    "LoadHarness",
    "ServiceClient",
    "submit_jobs",
    "JobExecutor",
    "KillInjector",
    "JobJournal",
    "JobState",
    "JobRequest",
    "JobResponse",
    "JobStatus",
]
