"""Service client: submit jobs, honour backpressure.

:class:`ServiceClient` is the asyncio client the daemon's tests and the
load harness use; :func:`submit_jobs` is the one-shot synchronous wrapper
behind ``ccprof submit``.

Backpressure handling is where the robustness layer plugs in: a
``rejected`` response with ``retry_after_ms`` is retried with the
daemon's hint plus the jittered-backoff schedule from
:mod:`repro.robustness.retry`, under an **injectable seeded RNG** so a
chaos run's client behaviour replays exactly.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import AdmissionRejectedError, ProtocolError, ServiceError
from repro.robustness.retry import RetryPolicy
from repro.service.protocol import MAX_LINE_BYTES, JobRequest, JobResponse


@dataclass
class ClientStats:
    """What one client observed (load-harness accounting)."""

    submitted: int = 0
    rejections_retried: int = 0
    responses: List[JobResponse] = field(default_factory=list)


class ServiceClient:
    """One NDJSON connection to the daemon.

    Args:
        socket_path: The daemon's unix socket.
        retry_policy: Backoff schedule layered on top of the daemon's
            ``retry_after`` hints when resubmitting rejected jobs.
        rng: Seeded jitter RNG (injectable so chaos runs reproduce);
            built from ``seed`` when omitted.
        sleep: Async sleep (injectable for simulated time in tests).
    """

    def __init__(
        self,
        socket_path: str,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        seed: int = 0,
        sleep=asyncio.sleep,
    ) -> None:
        self.socket_path = socket_path
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=6, base_delay=0.02, max_delay=0.5
        )
        self.rng = rng or random.Random(seed)
        self._sleep = sleep
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self.stats = ClientStats()

    async def connect(self) -> None:
        """Open the connection (idempotent)."""
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.open_unix_connection(
            self.socket_path, limit=MAX_LINE_BYTES
        )

    async def close(self) -> None:
        """Close the connection."""
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # -- raw protocol ---------------------------------------------------

    async def send(self, request: JobRequest) -> None:
        """Write one request line."""
        await self.connect()
        assert self._writer is not None
        self._writer.write(request.encode())
        await self._writer.drain()
        self.stats.submitted += 1

    async def read_response(self) -> JobResponse:
        """Read the next response line (whatever job it answers)."""
        assert self._reader is not None, "connect() first"
        line = await self._reader.readline()
        if not line:
            raise ServiceError("daemon closed the connection")
        response = JobResponse.decode(line.rstrip(b"\n"))
        self.stats.responses.append(response)
        return response

    # -- the polite request loop ----------------------------------------

    async def submit(self, request: JobRequest) -> JobResponse:
        """Submit one job, resubmitting on backpressure.

        Rejections are retried up to ``retry_policy.max_attempts`` times,
        sleeping the daemon's ``retry_after_ms`` hint plus the policy's
        jittered backoff each round.  The final answer (terminal or the
        last rejection) is returned — this method never raises on a
        protocol-level rejection, so load harness accounting sees every
        outcome.
        """
        policy = self.retry_policy
        last: Optional[JobResponse] = None
        for attempt in range(1, policy.max_attempts + 1):
            await self.send(request)
            response = await self.read_response()
            if response.id and response.id != request.id:
                raise ProtocolError(
                    f"response id {response.id!r} does not match "
                    f"request {request.id!r} (pipelining misuse: use "
                    "send()/read_response() for concurrent submissions)"
                )
            last = response
            if response.status != "rejected":
                return response
            self.stats.rejections_retried += 1
            hint = (response.retry_after_ms or 0) / 1000.0
            delay = hint + policy.delay_before(attempt + 1, self.rng)
            if attempt < policy.max_attempts and delay > 0:
                await self._sleep(delay)
        assert last is not None
        return last


def submit_jobs(
    socket_path: str,
    requests: Sequence[JobRequest],
    *,
    seed: int = 0,
    retry_policy: Optional[RetryPolicy] = None,
) -> Dict[str, JobResponse]:
    """Synchronously submit ``requests`` and collect responses by id.

    The ``ccprof submit`` CLI path and simple tests use this; each request
    is driven through :meth:`ServiceClient.submit` on one connection.

    Raises:
        AdmissionRejectedError: When a job is still rejected after every
            polite retry (carries the daemon's last ``retry_after`` hint).
    """

    async def _run() -> Dict[str, JobResponse]:
        results: Dict[str, JobResponse] = {}
        async with ServiceClient(
            socket_path, seed=seed, retry_policy=retry_policy
        ) as client:
            for request in requests:
                response = await client.submit(request)
                if response.status == "rejected":
                    error = (response.error or {}).get("message", "rejected")
                    raise AdmissionRejectedError(
                        f"job {request.id!r} rejected after retries: {error}",
                        retry_after=(response.retry_after_ms or 0) / 1000.0,
                    )
                results[request.id] = response
        return results

    return asyncio.run(_run())
