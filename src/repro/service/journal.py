"""Crash-safe write-ahead job journal.

Every job-state transition is appended to an on-disk log *before* the
transition takes effect (write-ahead), so a killed worker or a daemon
restart can resolve every in-flight job instead of silently losing it.

The format borrows trace v2's integrity discipline, adapted to a line
protocol: a magic header line, then one record per line prefixed with the
CRC-32 of its canonical JSON payload::

    CCPROF-JOURNAL 1
    3f2a9c01 {"job":"j1","seq":1,"state":"received","tenant":"acme",...}

Crash-anywhere safety falls out of the framing: a torn final write leaves
either a line without a newline or a line whose CRC does not match, and
replay quarantines exactly that tail — every fully flushed record before
it is recovered intact (mirroring the salvage reader's
truncated-mid-chunk behaviour).
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.errors import JournalError
from repro.obs.metrics import get_registry

_MAGIC = "CCPROF-JOURNAL 1"

PathLike = Union[str, Path]


class JobState:
    """Journal states of one job's lifecycle.

    ``received -> running -> (completed | degraded | failed)`` is the
    normal path; ``crashed`` marks a worker death (the job is requeued or
    failed by the recovery/retry policy, never silently dropped).
    """

    RECEIVED = "received"
    RUNNING = "running"
    CRASHED = "crashed"
    COMPLETED = "completed"
    DEGRADED = "degraded"
    FAILED = "failed"

    ALL = (RECEIVED, RUNNING, CRASHED, COMPLETED, DEGRADED, FAILED)
    TERMINAL = (COMPLETED, DEGRADED, FAILED)


@dataclass
class JournalRecord:
    """One decoded journal line."""

    seq: int
    job: str
    tenant: str
    state: str
    at: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)


@dataclass
class JournalStats:
    """Diagnostics from one journal replay (salvage accounting)."""

    records_read: int = 0
    records_quarantined: int = 0
    truncated_tail: bool = False

    @property
    def salvaged(self) -> bool:
        """True when replay encountered (and survived) damage."""
        return bool(self.records_quarantined or self.truncated_tail)


class JobJournal:
    """Append-only, checksummed job-state log.

    Args:
        path: Journal file; created (with parents) on first append.  An
            existing file is replayed lazily via :meth:`replay` and then
            appended to — sequence numbers continue from the replayed tail.
        fsync: Force records to stable storage on every append.  Off by
            default (tests, load harness); the CLI daemon turns it on.
        clock: Wall-clock source for record timestamps (injectable).
    """

    def __init__(
        self,
        path: PathLike,
        *,
        fsync: bool = False,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._clock = clock
        self._lock = threading.Lock()
        self._handle = None
        self._seq = 0
        if self.path.exists():
            records, _ = self.replay(self.path)
            if records:
                self._seq = records[-1].seq

    # -- writing -------------------------------------------------------

    def _open(self):
        if self._handle is None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh = not self.path.exists() or self.path.stat().st_size == 0
                self._handle = open(self.path, "a", encoding="utf-8")
            except OSError as exc:
                raise JournalError(f"cannot open journal {self.path}: {exc}") from exc
            if fresh:
                self._handle.write(_MAGIC + "\n")
                self._handle.flush()
        return self._handle

    def record(
        self, job: str, tenant: str, state: str, **extra: object
    ) -> JournalRecord:
        """Append one state transition (flushed before returning).

        Returns the decoded form of what was written, so callers can log
        or assert on it.
        """
        if state not in JobState.ALL:
            raise JournalError(f"unknown journal state {state!r}")
        with self._lock:
            self._seq += 1
            entry = JournalRecord(
                seq=self._seq,
                job=job,
                tenant=tenant,
                state=state,
                at=self._clock(),
                extra=dict(extra),
            )
            payload: Dict[str, object] = {
                "seq": entry.seq,
                "job": entry.job,
                "tenant": entry.tenant,
                "state": entry.state,
                "at": round(entry.at, 6),
            }
            if entry.extra:
                payload["extra"] = entry.extra
            blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
            crc = zlib.crc32(blob.encode("utf-8"))
            handle = self._open()
            handle.write(f"{crc:08x} {blob}\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        get_registry().counter("service.journal.records").inc()
        return entry

    def close(self) -> None:
        """Close the underlying file (further appends reopen it)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- replay --------------------------------------------------------

    @staticmethod
    def replay(
        path: PathLike, stats: Optional[JournalStats] = None
    ) -> "tuple[List[JournalRecord], JournalStats]":
        """Read every intact record of a (possibly torn) journal.

        A missing trailing newline, a CRC mismatch, or malformed JSON on
        the final line is quarantined as a torn write (``truncated_tail``);
        damage *before* the final line is quarantined per record and
        replay continues — matching the trace salvage reader's posture.
        A bad magic line always raises: there is nothing to salvage
        without a recognizable format.
        """
        stats = stats if stats is not None else JournalStats()
        path = Path(path)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as handle:
                lines = handle.readlines()
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") from exc
        if not lines:
            return [], stats
        if lines[0].rstrip("\n") != _MAGIC:
            raise JournalError(f"{path}: bad journal magic {lines[0]!r:.40}")
        records: List[JournalRecord] = []
        for index, line in enumerate(lines[1:], start=2):
            is_last = index == len(lines)
            if not line.endswith("\n"):
                # Torn final write: the record never finished flushing.
                stats.truncated_tail = True
                break
            record = JobJournal._decode_line(line.rstrip("\n"))
            if record is None:
                stats.records_quarantined += 1
                if is_last:
                    stats.truncated_tail = True
                continue
            stats.records_read += 1
            records.append(record)
        return records, stats

    @staticmethod
    def _decode_line(text: str) -> Optional[JournalRecord]:
        crc_hex, _, blob = text.partition(" ")
        if len(crc_hex) != 8 or not blob:
            return None
        try:
            expected = int(crc_hex, 16)
        except ValueError:
            return None
        if zlib.crc32(blob.encode("utf-8")) != expected:
            return None
        try:
            payload = json.loads(blob)
            return JournalRecord(
                seq=int(payload["seq"]),
                job=str(payload["job"]),
                tenant=str(payload["tenant"]),
                state=str(payload["state"]),
                at=float(payload.get("at", 0.0)),
                extra=dict(payload.get("extra", {})),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    # -- recovery ------------------------------------------------------

    @classmethod
    def recover(
        cls, path: PathLike
    ) -> "tuple[Dict[str, JournalRecord], JournalStats]":
        """Last known state per job, for restart recovery.

        Returns ``({job_id: last_record}, stats)``.  Jobs whose last state
        is non-terminal are the daemon's restart obligation: it must
        either resume them or fail them cleanly (it never drops them).
        """
        records, stats = cls.replay(path)
        last: Dict[str, JournalRecord] = {}
        for record in records:
            last[record.job] = record
        return last, stats

    @classmethod
    def unresolved(cls, path: PathLike) -> Dict[str, JournalRecord]:
        """Jobs left in a non-terminal state by a previous process."""
        last, _ = cls.recover(path)
        return {
            job: record
            for job, record in last.items()
            if record.state not in JobState.TERMINAL
        }
