"""Job execution: the pipeline behind the service, with degradation.

The executor is synchronous and thread-safe — the daemon calls it from
worker threads.  Three job kinds map onto the existing pipeline:

- ``profile`` — online sampling + offline analysis (``CCProf.run``).
- ``predict`` — the zero-trace static predictor (``repro.analysis``).
- ``compare`` — original-vs-optimized profile diff.

**Degradation ladder.**  A ``profile``/``compare`` job degrades — rather
than fails — in two cases: admission marked it (queue saturated past the
soft threshold), or its simulation blew the watchdog budget derived from
the request deadline.  Under saturation the cheapest rung runs first:
the analytical screen (birthday/folding passes, O(accesses)) answers
outright when its verdict is a decisive ``clear``; otherwise the job
falls back to the static predictor when the workload declares access
patterns, and the response carries a ``degraded_reason`` plus a
confidence note; workloads without declarations return the truncated
dynamic result, also marked degraded.  Only genuine errors (unknown
workload, malformed request, crashed worker out of retries) fail.

**Shared pass cache.**  Static models and their
:class:`~repro.analysis.framework.AnalysisCache` are cached per
``(workload, params, geometry)`` across jobs and tenants — results are a
pure function of the workload and geometry, so sharing is safe and makes
repeat predictions O(cache hit).  Tenant identity never enters the key,
which is what the cross-tenant leakage test pins down.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis import (
    AnalysisCache,
    ConflictPredictionAnalysis,
    SCREEN_CLEAR,
    ScreeningAnalysis,
    StaticModel,
)
from repro.errors import AnalysisError, ReproError, WorkerCrashError
from repro.obs.metrics import get_registry
from repro.pmu.periods import UniformJitterPeriod
from repro.robustness.budget import SamplingBudget
from repro.service.protocol import JobRequest, JobResponse, JobStatus
from repro.workloads.registry import resolve_workload

#: Degraded verdicts carry this confidence note (the static predictor has
#: perfect recall but imperfect precision against the dynamic profiler —
#: see the PR 3 cross-validation gates).
STATIC_FALLBACK_CONFIDENCE = (
    "static prediction (precision ~0.91 / recall 1.0 vs dynamic profiler)"
)

#: Truncated dynamic results carry this note instead.
PARTIAL_PROFILE_CONFIDENCE = "partial dynamic profile; verdicts are best-effort"

#: Screen-cleared answers under saturation carry this note (the screen's
#: decision rule only answers when its calibrated score is decisively
#: low; everything else falls through to the static predictor).
SCREEN_CLEAR_CONFIDENCE = (
    "analytical screen verdict 'clear' (birthday/folding passes; "
    "mid-band scores fall through to the static predictor)"
)

#: Timeline cap for job responses: the NDJSON protocol's 64 KiB line
#: budget has to hold the whole result, so wire timelines coalesce much
#: harder than manifest timelines (full resolution lives in the run
#: manifest when the daemon writes one).
WIRE_TIMELINE_WINDOWS = 64


class KillInjector:
    """Seeded worker-kill fault injector (chaos harness hook).

    With probability ``rate`` per execution attempt, raises
    :class:`WorkerCrashError` *mid-job* — after the executor has started
    work, modelling a worker process dying with the job in flight.  Fully
    deterministic under its seed so chaos runs reproduce end-to-end.
    ``max_kills`` caps the total (the CI smoke run injects exactly one).
    """

    def __init__(
        self, rate: float = 0.0, seed: int = 0, max_kills: Optional[int] = None
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"kill rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.max_kills = max_kills
        self._rng = random.Random(seed)
        self.kills = 0
        self._lock = threading.Lock()

    def maybe_kill(self, job_id: str) -> None:
        """Possibly kill the current worker (raises WorkerCrashError)."""
        if self.rate <= 0.0:
            return
        with self._lock:
            exhausted = self.max_kills is not None and self.kills >= self.max_kills
            doomed = not exhausted and self._rng.random() < self.rate
            if doomed:
                self.kills += 1
        if doomed:
            get_registry().counter("service.workers.killed").inc()
            raise WorkerCrashError(f"injected worker kill during job {job_id}")


@dataclass
class ExecutionResult:
    """What one executor call produced (pre-protocol)."""

    status: str
    result: Dict[str, object] = field(default_factory=dict)
    degraded_reason: Optional[str] = None
    confidence: Optional[str] = None


class JobExecutor:
    """Runs validated job requests against the pipeline.

    Args:
        default_deadline_ms: Deadline applied when a request names none;
            it becomes the run's ``SamplingBudget.deadline_seconds``.
        default_max_accesses: Simulation budget applied when a request
            names none (``None`` = unlimited).  Blowing either budget
            triggers the degradation ladder, not a failure.
        kill_injector: Optional chaos hook consulted once per attempt.
        clock: Monotonic clock for latency accounting (injectable).
    """

    def __init__(
        self,
        *,
        default_deadline_ms: int = 30_000,
        default_max_accesses: Optional[int] = None,
        kill_injector: Optional[KillInjector] = None,
        clock=time.monotonic,
    ) -> None:
        self.default_deadline_ms = default_deadline_ms
        self.default_max_accesses = default_max_accesses
        self.kill_injector = kill_injector
        self._clock = clock
        self._pass_cache: Dict[Tuple[str, Tuple[Tuple[str, int], ...]], AnalysisCache] = {}
        self._cache_lock = threading.Lock()

    # -- shared pass cache ---------------------------------------------

    def _analysis_cache(self, request: JobRequest) -> AnalysisCache:
        """The cross-job :class:`AnalysisCache` for this workload spec."""
        key = (request.workload, tuple(sorted(request.params.items())))
        with self._cache_lock:
            cache = self._pass_cache.get(key)
            if cache is not None:
                get_registry().counter("service.pass_cache.shared_hits").inc()
                return cache
        # Built outside the lock: model construction can be slow and is
        # idempotent; a racing duplicate is discarded below.
        workload = resolve_workload(request.workload, **request.params)
        model = StaticModel.from_workload(workload)
        fresh = AnalysisCache(model)
        with self._cache_lock:
            cache = self._pass_cache.setdefault(key, fresh)
        if cache is fresh:
            get_registry().counter("service.pass_cache.models_built").inc()
        return cache

    def pass_cache_size(self) -> int:
        """Distinct workload specs with a cached static model."""
        with self._cache_lock:
            return len(self._pass_cache)

    # -- execution ------------------------------------------------------

    def execute(
        self, request: JobRequest, *, degrade: bool = False
    ) -> ExecutionResult:
        """Run one job attempt.

        Args:
            request: The validated job.
            degrade: Admission-control marked this job for degradation
                (queue saturated): simulation kinds go straight to the
                static fallback.

        Raises:
            WorkerCrashError: The kill injector fired (the daemon's retry
                policy decides whether to requeue or fail the job).
            ReproError: Anything the pipeline itself rejects.
        """
        if self.kill_injector is not None:
            self.kill_injector.maybe_kill(request.id)
        if request.kind == "predict":
            return self._predict(request)
        if degrade:
            screened = self._screen_fallback(
                request, reason="queue saturated; analytical screen cleared"
            )
            if screened is not None:
                return screened
            return self._static_fallback(
                request, reason="queue saturated; served static prediction"
            )
        if request.kind == "profile":
            return self._profile(request)
        return self._compare(request)

    # -- budgets --------------------------------------------------------

    def _budget(self, request: JobRequest) -> SamplingBudget:
        deadline_ms = request.deadline_ms or self.default_deadline_ms
        max_accesses = request.max_accesses or self.default_max_accesses
        return SamplingBudget(
            max_accesses=max_accesses,
            deadline_seconds=deadline_ms / 1000.0,
        )

    def _engine(self, request: JobRequest):
        """Resolve the request's engine against the live registry.

        The registry is the single source of truth: a daemon with extra
        backends registered accepts their names with no service change,
        and an unknown name fails the job with a sampling-family error
        (listing what is registered).  The backend mix is visible in the
        daemon's telemetry as ``service.engine.<name>`` counters.
        """
        from repro.engine import get_backend  # local: keep import cheap

        backend = get_backend(request.engine or "batched")
        get_registry().counter(f"service.engine.{backend.name}").inc()
        return backend

    def _profiler(self, request: JobRequest):
        from repro.core.profiler import CCProf  # local: avoid cycle at import

        return CCProf(
            period=UniformJitterPeriod(max(1, request.period)),
            seed=request.seed,
            strict=False,
            budget=self._budget(request),
            engine=self._engine(request),
        )

    # -- job kinds ------------------------------------------------------

    def _profile(self, request: JobRequest) -> ExecutionResult:
        workload = resolve_workload(request.workload, **request.params)
        profiler = self._profiler(request)
        report = profiler.run(workload)
        sampling = report.raw_profile.sampling
        if sampling.truncated:
            # Simulation budget blown: degrade rather than fail.
            return self._static_fallback(
                request,
                reason=f"simulation budget blown ({sampling.truncation_reason})",
                partial={
                    "samples": sampling.sample_count,
                    "events": sampling.total_events,
                },
            )
        result: Dict[str, object] = {
            "workload": workload.name,
            "samples": sampling.sample_count,
            "events": sampling.total_events,
            "accesses": sampling.total_accesses,
            "has_conflicts": report.has_conflicts,
            "conflicting_loops": [
                loop.loop_name for loop in report.conflicting_loops()
            ],
        }
        if request.window is not None:
            result["timeline"] = self._windowed_timeline(
                request, profiler, sampling.samples
            )
        return ExecutionResult(status=JobStatus.COMPLETED, result=result)

    def _windowed_timeline(
        self, request: JobRequest, profiler, samples
    ) -> Dict[str, object]:
        """Streaming windowed analysis for a long-running profile job.

        Per-window progress rides the obs layer — the daemon's telemetry
        snapshot shows ``service.jobs.window.completed`` advancing while
        the job runs, which is how operators see a long job is alive and
        where its conflict phases fall.
        """
        registry = get_registry()

        def on_window(summary) -> None:
            registry.counter("service.jobs.window.completed").inc()
            if summary.has_conflict:
                registry.counter("service.jobs.window.conflicts").inc()

        analysis = profiler.backend.windowed_phases(
            samples,
            profiler.geometry,
            window=request.window,
            on_window=on_window,
        )
        return analysis.timeline_record(max_windows=WIRE_TIMELINE_WINDOWS)

    def _compare(self, request: JobRequest) -> ExecutionResult:
        name, _, variant = request.workload.partition(":")
        if variant:
            raise AnalysisError(
                "compare takes a bare workload name; it runs both variants"
            )
        profiler = self._profiler(request)
        before = profiler.run(resolve_workload(name, **request.params))
        after = profiler.run(
            resolve_workload(f"{name}:optimized", **request.params)
        )
        truncated = (
            before.raw_profile.sampling.truncated
            or after.raw_profile.sampling.truncated
        )
        if truncated:
            return self._static_fallback(
                request, reason="simulation budget blown during compare"
            )
        return ExecutionResult(
            status=JobStatus.COMPLETED,
            result={
                "workload": name,
                "conflicts_before": before.has_conflicts,
                "conflicts_after": after.has_conflicts,
                "resolved": before.has_conflicts and not after.has_conflicts,
            },
        )

    def _predict(self, request: JobRequest) -> ExecutionResult:
        cache = self._analysis_cache(request)
        report = cache.request(ConflictPredictionAnalysis).report
        return ExecutionResult(
            status=JobStatus.COMPLETED,
            result=self._prediction_summary(report),
        )

    # -- degradation ladder ---------------------------------------------

    def _screen_fallback(
        self, request: JobRequest, *, reason: str
    ) -> Optional[ExecutionResult]:
        """The ladder's cheapest rung: answer from the analytical screen.

        A saturated queue tries the birthday/folding screen before the
        (costlier, footprint-enumerating) static predictor.  Only a
        decisive ``clear`` answers here — suspect and unknown verdicts
        return ``None`` so the job falls through to the next rung.
        """
        try:
            cache = self._analysis_cache(request)
        except ReproError:
            return None
        try:
            screen = cache.request(ScreeningAnalysis).report
        except ReproError:
            return None
        if screen.verdict != SCREEN_CLEAR:
            return None
        get_registry().counter("service.jobs.degraded_screen").inc()
        result: Dict[str, object] = {
            "workload": screen.workload_name,
            "trace_accesses_simulated": 0,
            "has_conflicts": False,
            "conflicting_loops": [],
            "screen": screen.to_record(),
        }
        return ExecutionResult(
            status=JobStatus.DEGRADED,
            result=result,
            degraded_reason=reason,
            confidence=SCREEN_CLEAR_CONFIDENCE,
        )

    def _static_fallback(
        self,
        request: JobRequest,
        *,
        reason: str,
        partial: Optional[Dict[str, object]] = None,
    ) -> ExecutionResult:
        """Serve a static prediction in place of a full simulation."""
        registry = get_registry()
        try:
            cache = self._analysis_cache(request)
        except ReproError:
            # No declared access patterns: return the partial dynamic
            # result (if any) as the last rung of the ladder.
            registry.counter("service.jobs.degraded_partial").inc()
            return ExecutionResult(
                status=JobStatus.DEGRADED,
                result=dict(partial or {}),
                degraded_reason=reason + "; workload has no static model",
                confidence=PARTIAL_PROFILE_CONFIDENCE,
            )
        report = cache.request(ConflictPredictionAnalysis).report
        registry.counter("service.jobs.degraded_static").inc()
        result = self._prediction_summary(report)
        if partial:
            result["partial_profile"] = dict(partial)
        return ExecutionResult(
            status=JobStatus.DEGRADED,
            result=result,
            degraded_reason=reason,
            confidence=STATIC_FALLBACK_CONFIDENCE,
        )

    @staticmethod
    def _prediction_summary(report) -> Dict[str, object]:
        return {
            "workload": report.workload_name,
            "trace_accesses_simulated": 0,
            "has_conflicts": report.has_conflicts,
            "conflicting_loops": [
                loop.loop_name for loop in report.conflicting_loops()
            ],
        }


def response_for(
    request: JobRequest,
    outcome: ExecutionResult,
    *,
    elapsed_ms: float,
    attempts: int,
) -> JobResponse:
    """Assemble the wire response for a terminal execution outcome."""
    return JobResponse(
        id=request.id,
        tenant=request.tenant,
        status=outcome.status,
        result=outcome.result,
        degraded_reason=outcome.degraded_reason,
        confidence=outcome.confidence,
        elapsed_ms=elapsed_ms,
        attempts=attempts,
    )
