"""Admission control: bounded queues, tenant quotas, circuit breakers.

A daemon that buffers without bound dies of memory pressure the first time
a tenant misbehaves.  Admission control makes overload explicit instead:

- a **global queue bound** — beyond it, jobs are rejected with a
  ``retry_after`` hint (backpressure the client can act on);
- **per-tenant quotas** — one tenant saturating the service cannot starve
  its neighbours; the quota covers queued + running jobs per tenant;
- a **soft degradation threshold** — between "comfortable" and "full" the
  controller asks the executor to serve cheap static predictions instead
  of full simulations (the degradation ladder's middle rung);
- **per-tenant circuit breakers** — a tenant whose jobs keep failing is
  failed fast for a cooldown instead of burning worker time.

All time is injectable (``clock``) so tests are deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import AdmissionRejectedError, CircuitOpenError
from repro.obs.metrics import get_registry


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control knobs.

    Attributes:
        max_queue_depth: Hard global bound on queued (not yet running)
            jobs; admissions beyond it are rejected with ``retry_after``.
        tenant_quota: Max queued + running jobs per tenant.
        degrade_threshold: Queue-depth fraction above which newly admitted
            simulation jobs are marked for degradation to the static
            predictor (``0.75`` = degrade once the queue is 75% full).
        retry_after: Base client backoff hint (seconds) on rejection.
        breaker_threshold: Consecutive failures that open a tenant's
            circuit (0 disables the breaker).
        breaker_cooldown: Seconds an open circuit rejects before allowing
            a half-open probe.
    """

    max_queue_depth: int = 64
    tenant_quota: int = 8
    degrade_threshold: float = 0.75
    retry_after: float = 0.05
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1")
        if not 0.0 < self.degrade_threshold <= 1.0:
            raise ValueError("degrade_threshold must be in (0, 1]")


class TenantCircuitBreaker:
    """Classic closed → open → half-open breaker for one tenant.

    Closed: submissions pass, consecutive failures are counted.  Open:
    submissions fail fast until ``cooldown`` elapses.  Half-open: one
    probe is admitted; success closes the breaker, failure reopens it.
    """

    def __init__(
        self,
        threshold: int,
        cooldown: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._opened_at: float = 0.0
        self._state = "closed"

    @property
    def state(self) -> str:
        """``closed`` | ``open`` | ``half-open`` (clock-aware)."""
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = "half-open"
        return self._state

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` while the circuit is open."""
        if self.threshold <= 0:
            return
        if self.state == "open":
            remaining = max(
                0.0, self.cooldown - (self._clock() - self._opened_at)
            )
            raise CircuitOpenError(
                f"tenant circuit open for another {remaining:.3f}s "
                f"({self._failures} consecutive failures)",
                retry_after=remaining,
            )

    def record_success(self) -> None:
        """A job finished (completed or degraded): close the circuit."""
        self._failures = 0
        self._state = "closed"

    def record_failure(self) -> None:
        """A job failed; trip the breaker at the threshold."""
        if self.threshold <= 0:
            return
        self._failures += 1
        if self._state == "half-open" or self._failures >= self.threshold:
            self._state = "open"
            self._opened_at = self._clock()


class AdmissionController:
    """Decides, per submission, admit / admit-degraded / reject.

    The controller owns no queue itself — it tracks depth counters the
    daemon updates via :meth:`job_started` / :meth:`job_finished` — so it
    can be unit-tested without an event loop.
    """

    def __init__(
        self,
        config: AdmissionConfig = AdmissionConfig(),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        self.queued = 0
        self.running = 0
        self._per_tenant: Dict[str, int] = {}
        self._breakers: Dict[str, TenantCircuitBreaker] = {}

    # -- bookkeeping ---------------------------------------------------

    def breaker(self, tenant: str) -> TenantCircuitBreaker:
        """The (lazily created) breaker for ``tenant``."""
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = self._breakers[tenant] = TenantCircuitBreaker(
                self.config.breaker_threshold,
                self.config.breaker_cooldown,
                self._clock,
            )
        return breaker

    def tenant_load(self, tenant: str) -> int:
        """Queued + running jobs currently charged to ``tenant``."""
        return self._per_tenant.get(tenant, 0)

    def _gauges(self) -> None:
        registry = get_registry()
        registry.gauge("service.queue.depth").set(self.queued)
        registry.gauge("service.jobs.running").set(self.running)

    # -- the admission decision ----------------------------------------

    def admit(self, tenant: str) -> bool:
        """Admit one job for ``tenant`` or raise.

        Returns:
            True when the job should be *degraded on admission* (the
            queue is past the soft threshold), False for a full run.

        Raises:
            CircuitOpenError: The tenant's breaker is open.
            AdmissionRejectedError: Queue full or tenant over quota.
        """
        config = self.config
        registry = get_registry()
        self.breaker(tenant).check()
        if self.queued >= config.max_queue_depth:
            registry.counter("service.jobs.rejected").inc()
            registry.counter(f"service.tenant.{tenant}.rejected").inc()
            raise AdmissionRejectedError(
                f"queue full ({self.queued}/{config.max_queue_depth} jobs); "
                "retry later",
                retry_after=config.retry_after * (1 + self.queued / config.max_queue_depth),
            )
        if self.tenant_load(tenant) >= config.tenant_quota:
            registry.counter("service.jobs.rejected").inc()
            registry.counter(f"service.tenant.{tenant}.rejected").inc()
            raise AdmissionRejectedError(
                f"tenant {tenant!r} over quota "
                f"({self.tenant_load(tenant)}/{config.tenant_quota} in flight)",
                retry_after=config.retry_after,
            )
        self.queued += 1
        self._per_tenant[tenant] = self.tenant_load(tenant) + 1
        registry.counter("service.jobs.accepted").inc()
        registry.counter(f"service.tenant.{tenant}.accepted").inc()
        self._gauges()
        saturation = self.queued / config.max_queue_depth
        return saturation >= config.degrade_threshold

    def resume(self, tenant: str) -> None:
        """Re-admit a journaled job during restart recovery.

        Charges the queue *and* the tenant exactly like :meth:`admit`, so
        the resumed job's eventual :meth:`job_finished` releases a slot it
        actually holds and quota accounting stays balanced against newly
        admitted jobs.  Quota and breaker checks are skipped: the previous
        daemon already admitted this job.
        """
        self.queued += 1
        self._per_tenant[tenant] = self.tenant_load(tenant) + 1
        self._gauges()

    def job_started(self) -> None:
        """A worker dequeued one job."""
        self.queued = max(0, self.queued - 1)
        self.running += 1
        self._gauges()

    def job_requeued(self) -> None:
        """A crashed job went back on the queue (retry)."""
        self.running = max(0, self.running - 1)
        self.queued += 1
        self._gauges()

    def job_finished(self, tenant: str, *, failed: bool) -> None:
        """A job reached a terminal state; release its slot and feed the
        tenant's breaker."""
        self.running = max(0, self.running - 1)
        load = self.tenant_load(tenant)
        if load <= 1:
            self._per_tenant.pop(tenant, None)
        else:
            self._per_tenant[tenant] = load - 1
        breaker = self.breaker(tenant)
        if failed:
            breaker.record_failure()
        else:
            breaker.record_success()
        self._gauges()
