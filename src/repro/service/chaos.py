"""Load/chaos harness for the service daemon.

Drives hundreds of concurrent small jobs from many tenants against one
in-process daemon while injecting worker kills (seeded) and slow-client
faults, then checks the robustness invariants the service promises:

- **liveness** — the daemon answers every well-formed submission;
- **exactly-once** — every accepted job reaches exactly one terminal
  state, in the responses *and* in the journal;
- **isolation** — no response ever carries another tenant's identity,
  and per-tenant counters sum to the per-tenant submissions;
- **latency** — p99 client-observed latency for small jobs stays under
  an asserted bound even with kills and backpressure in play.

Runable standalone for CI (``python -m repro.service.chaos --jobs 50
--kill-max 1``) and from the chaos test suite at full scale.
"""

from __future__ import annotations

import argparse
import asyncio
import random
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, get_registry, use_registry
from repro.service.admission import AdmissionConfig
from repro.service.client import ServiceClient
from repro.service.daemon import CCProfService, ServiceConfig
from repro.service.journal import JobJournal, JobState
from repro.service.protocol import JobRequest

#: The job mix: cheap static predictions plus small dynamic profiles.
#: Sizing keeps one job in the tens of milliseconds so hundreds run in
#: seconds — production posture at toy scale.
SMALL_JOBS = (
    ("predict", "symmetrization", {"n": 48, "sweeps": 1}),
    ("profile", "symmetrization", {"n": 48, "sweeps": 1}),
    ("predict", "gemm", {"n": 24}),
    ("profile", "nw", {"n": 48}),  # nw requires n % 16 == 0
)


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered) + 0.5) - 1))
    return ordered[rank]


@dataclass
class ChaosReport:
    """Everything one harness run observed."""

    jobs: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    kills: int = 0
    slow_clients_dropped: int = 0
    retried_rejections: int = 0
    duplicate_resolutions: int = 0
    cross_tenant_violations: int = 0
    missing_responses: List[str] = field(default_factory=list)
    journal_terminal_counts: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def p50_ms(self) -> float:
        return _percentile(self.latencies_ms, 0.50)

    @property
    def p95_ms(self) -> float:
        return _percentile(self.latencies_ms, 0.95)

    @property
    def p99_ms(self) -> float:
        return _percentile(self.latencies_ms, 0.99)

    def resolved_jobs(self) -> int:
        """Jobs that reached a terminal (or final-rejected) state."""
        return sum(self.outcomes.values())

    def describe(self) -> str:
        """One-paragraph summary for CI logs."""
        outcome = ", ".join(
            f"{status}={count}" for status, count in sorted(self.outcomes.items())
        )
        return (
            f"{self.jobs} jobs -> {outcome}; kills={self.kills}, "
            f"slow clients dropped={self.slow_clients_dropped}, "
            f"rejections retried={self.retried_rejections}; latency "
            f"p50={self.p50_ms:.1f}ms p95={self.p95_ms:.1f}ms "
            f"p99={self.p99_ms:.1f}ms"
        )

    def check(self, *, max_p99_ms: float) -> List[str]:
        """Return the list of violated invariants (empty = pass)."""
        problems: List[str] = []
        if self.missing_responses:
            problems.append(
                f"{len(self.missing_responses)} jobs never answered: "
                f"{sorted(self.missing_responses)[:5]}..."
            )
        if self.resolved_jobs() != self.jobs:
            problems.append(
                f"resolved {self.resolved_jobs()} of {self.jobs} jobs"
            )
        if self.duplicate_resolutions:
            problems.append(
                f"{self.duplicate_resolutions} duplicate job resolutions"
            )
        if self.cross_tenant_violations:
            problems.append(
                f"{self.cross_tenant_violations} cross-tenant responses"
            )
        over_once = {
            job: count
            for job, count in self.journal_terminal_counts.items()
            if count != 1
        }
        if over_once:
            problems.append(
                f"journal terminal-state counts != 1 for {len(over_once)} jobs"
            )
        if self.p99_ms > max_p99_ms:
            problems.append(
                f"p99 latency {self.p99_ms:.1f}ms over the "
                f"{max_p99_ms:.0f}ms bound"
            )
        return problems


class LoadHarness:
    """Configurable chaos run against a fresh in-process daemon.

    Args:
        jobs: Total jobs across all tenants.
        tenants: Distinct tenant identities.
        kill_rate: Injected worker-kill probability per attempt.
        kill_max: Optional cap on total injected kills.
        slow_clients: Connections that stall mid-request (dropped by the
            daemon's read deadline, never blocking a worker).
        workers: Daemon worker-pool size.
        seed: Master seed; every RNG in the run derives from it, so the
            same harness arguments replay the same chaos.
        deadline_ms: Per-job deadline handed to every request.
        engine: Optional engine-backend name attached to every request
            (``None`` keeps the service default, ``batched``).  ROADMAP
            item 2's saturation question — what happens when worker
            *threads* multiply into worker *processes* — is answered by
            running the same harness with ``engine="sharded"``.
    """

    def __init__(
        self,
        *,
        jobs: int = 200,
        tenants: int = 8,
        kill_rate: float = 0.2,
        kill_max: Optional[int] = None,
        slow_clients: int = 4,
        workers: int = 8,
        seed: int = 0,
        deadline_ms: int = 10_000,
        engine: Optional[str] = None,
    ) -> None:
        self.jobs = jobs
        self.tenants = tenants
        self.kill_rate = kill_rate
        self.kill_max = kill_max
        self.slow_clients = slow_clients
        self.workers = workers
        self.seed = seed
        self.deadline_ms = deadline_ms
        self.engine = engine

    def _requests(self) -> List[JobRequest]:
        rng = random.Random(self.seed)
        requests = []
        for index in range(self.jobs):
            kind, workload, params = SMALL_JOBS[
                rng.randrange(len(SMALL_JOBS))
            ]
            requests.append(
                JobRequest(
                    id=f"job-{index:04d}",
                    tenant=f"tenant-{index % self.tenants}",
                    kind=kind,
                    workload=workload,
                    params=dict(params),
                    seed=rng.randrange(1 << 16),
                    period=64,
                    deadline_ms=self.deadline_ms,
                    engine=self.engine,
                )
            )
        return requests

    async def _slow_client(self, socket_path: str) -> None:
        """Connect, write half a request, stall until the daemon drops us."""
        try:
            reader, writer = await asyncio.open_unix_connection(socket_path)
        except (ConnectionError, OSError):
            return
        try:
            writer.write(b'{"id":"stall","tenant":"sl')  # no newline, ever
            await writer.drain()
            await reader.read()  # daemon closes us after read_timeout
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _drive_job(
        self,
        socket_path: str,
        request: JobRequest,
        report: ChaosReport,
        clock,
    ) -> None:
        # str hash() is salted per process; crc32 keeps the per-job
        # jitter seed stable across runs.
        client = ServiceClient(
            socket_path,
            rng=random.Random(
                (self.seed << 8) ^ zlib.crc32(request.id.encode())
            ),
        )
        started = clock()
        try:
            async with client:
                response = await client.submit(request)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            report.missing_responses.append(request.id)
            return
        report.latencies_ms.append((clock() - started) * 1000.0)
        report.retried_rejections += client.stats.rejections_retried
        if response.tenant != request.tenant or response.id != request.id:
            report.cross_tenant_violations += 1
        report.outcomes[response.status] = (
            report.outcomes.get(response.status, 0) + 1
        )

    async def _run(self, workdir: Path) -> ChaosReport:
        import time

        socket_path = str(workdir / "ccprof.sock")
        journal_path = str(workdir / "jobs.journal")
        config = ServiceConfig(
            socket_path=socket_path,
            workers=self.workers,
            admission=AdmissionConfig(
                max_queue_depth=max(64, self.jobs),
                tenant_quota=max(8, (2 * self.jobs) // max(1, self.tenants)),
                degrade_threshold=0.9,
                breaker_threshold=0,  # chaos kills are not tenant faults
            ),
            default_deadline_ms=self.deadline_ms,
            max_attempts=4,
            # Generous: daemon + hundreds of clients share one event loop
            # here, and GIL-heavy worker threads add scheduling lag; a
            # tight read deadline would drop healthy clients whose write
            # simply hadn't been scheduled yet.
            read_timeout=3.0,
            journal_path=journal_path,
            kill_rate=self.kill_rate,
            kill_seed=self.seed,
            kill_max=self.kill_max,
        )
        report = ChaosReport(jobs=self.jobs)
        requests = self._requests()
        async with CCProfService(config) as service:
            tasks = [
                asyncio.create_task(
                    self._drive_job(
                        socket_path, request, report, time.monotonic
                    )
                )
                for request in requests
            ]
            tasks.extend(
                asyncio.create_task(self._slow_client(socket_path))
                for _ in range(self.slow_clients)
            )
            await asyncio.gather(*tasks)
            if service.kill_injector is not None:
                report.kills = service.kill_injector.kills
        registry = get_registry()
        report.slow_clients_dropped = registry.counter(
            "service.clients.slow_dropped"
        ).value
        report.duplicate_resolutions = registry.counter(
            "service.jobs.duplicate_resolutions"
        ).value
        records, _ = JobJournal.replay(journal_path)
        for record in records:
            if record.state in JobState.TERMINAL:
                report.journal_terminal_counts[record.job] = (
                    report.journal_terminal_counts.get(record.job, 0) + 1
                )
        # Jobs the admission controller finally rejected resolved without
        # a journal entry; exactly-once only binds *accepted* jobs.
        return report

    def run(self) -> ChaosReport:
        """Execute the harness in a temporary directory."""
        with tempfile.TemporaryDirectory(prefix="ccprof-chaos-") as workdir:
            return asyncio.run(self._run(Path(workdir)))


def main(argv: Optional[List[str]] = None) -> int:
    """CI entry point: run the harness, print the report, gate on it."""
    parser = argparse.ArgumentParser(
        prog="repro.service.chaos",
        description="CCProf service load/chaos harness",
    )
    parser.add_argument("--jobs", type=int, default=200)
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--kill-rate", type=float, default=0.2)
    parser.add_argument("--kill-max", type=int, default=None)
    parser.add_argument("--slow-clients", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-p99-ms", type=float, default=5000.0)
    parser.add_argument(
        "--engine",
        default=None,
        help="engine backend name attached to every job "
        "(default: service default, i.e. batched)",
    )
    args = parser.parse_args(argv)
    harness = LoadHarness(
        jobs=args.jobs,
        tenants=args.tenants,
        workers=args.workers,
        kill_rate=args.kill_rate,
        kill_max=args.kill_max,
        slow_clients=args.slow_clients,
        seed=args.seed,
        engine=args.engine,
    )
    with use_registry(MetricsRegistry()):
        report = harness.run()
    print(report.describe())
    problems = report.check(max_p99_ms=args.max_p99_ms)
    for problem in problems:
        print(f"INVARIANT VIOLATED: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
