"""Memory-trace substrate.

The paper's toolchain observes programs either through Pin-generated memory
traces (fed to the Dinero IV simulator) or through sparse PEBS samples.  This
package provides the common substrate both views are built on:

- :mod:`repro.trace.record` — the :class:`MemoryAccess` record and access
  kinds (load/store/instruction fetch).
- :mod:`repro.trace.allocator` — a virtual heap allocator that mimics the
  libmonitor ``malloc`` interception CCProf uses for data-centric
  attribution: every allocation is recorded with its address range and label.
- :mod:`repro.trace.stream` — composable trace streams (concatenate, filter,
  interleave, window) so workloads can be assembled from kernels.
- :mod:`repro.trace.tracefile` — serialization to/from the textual ``.din``
  format used by Dinero IV, plus a compact binary format.
"""

from repro.trace.record import AccessKind, MemoryAccess
from repro.trace.allocator import Allocation, VirtualAllocator
from repro.trace.stream import (
    TraceStream,
    concat_traces,
    filter_by_ip,
    filter_by_range,
    interleave_round_robin,
    take,
    windowed,
)
from repro.trace.synthetic import markov_trace, uniform_trace, zipf_trace
from repro.trace.tracefile import (
    read_binary_trace,
    read_dinero_trace,
    write_binary_trace,
    write_dinero_trace,
)

__all__ = [
    "AccessKind",
    "MemoryAccess",
    "Allocation",
    "VirtualAllocator",
    "TraceStream",
    "concat_traces",
    "filter_by_ip",
    "filter_by_range",
    "interleave_round_robin",
    "take",
    "windowed",
    "uniform_trace",
    "zipf_trace",
    "markov_trace",
    "read_binary_trace",
    "read_dinero_trace",
    "write_binary_trace",
    "write_dinero_trace",
]
