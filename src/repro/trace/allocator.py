"""Virtual heap allocator for data-centric attribution.

CCProf preloads libmonitor to intercept ``malloc``/``free`` and records the
start and end address of every allocation; sampled conflict misses are later
mapped back to the covering allocation ("data-centric attribution",
paper §3.4).  Workloads in this reproduction allocate their arrays from a
:class:`VirtualAllocator`, which plays the role of the real heap: it hands
out non-overlapping virtual address ranges and keeps the allocation log that
the offline analyzer consults.

The allocator is deliberately simple — a bump allocator with configurable
alignment and optional inter-allocation guard gaps — because what matters for
conflict studies is the *relative layout* of arrays (their base addresses
modulo the cache-mapping period), which callers control via ``align`` and
explicit padding.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import AllocationError

#: Default allocation alignment. glibc malloc aligns to 16 bytes.
DEFAULT_ALIGNMENT = 16

#: Default base of the virtual heap.  An arbitrary page-aligned address that
#: leaves room below for the synthetic text segment used by program images.
DEFAULT_HEAP_BASE = 0x10_0000_0000


@dataclass(frozen=True)
class Allocation:
    """One live or freed allocation on the virtual heap.

    Attributes:
        start: First byte of the allocation.
        size: Size in bytes as requested by the caller.
        label: Human-readable name (e.g. ``"input_itemsets"``) used in
            data-centric reports.
        callsite_ip: Instruction pointer of the allocating call, when the
            workload models one; 0 otherwise.
        freed: Whether the range has been released.
    """

    start: int
    size: int
    label: str
    callsite_ip: int = 0
    freed: bool = False

    @property
    def end(self) -> int:
        """One past the last byte of the allocation."""
        return self.start + self.size

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside this allocation."""
        return self.start <= address < self.end

    def offset_of(self, address: int) -> int:
        """Byte offset of ``address`` from the allocation base."""
        if not self.contains(address):
            raise AllocationError(
                f"address {address:#x} outside allocation {self.label!r} "
                f"[{self.start:#x}, {self.end:#x})"
            )
        return address - self.start


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass
class VirtualAllocator:
    """Bump allocator over a virtual address space with an allocation log.

    Args:
        base: First address handed out.
        alignment: Default alignment of every allocation.
        guard_gap: Bytes of unused space left between consecutive
            allocations (0 reproduces a tightly packed heap, which is what
            makes inter-array conflicts like Needleman-Wunsch's possible).
    """

    base: int = DEFAULT_HEAP_BASE
    alignment: int = DEFAULT_ALIGNMENT
    guard_gap: int = 0
    _cursor: int = field(init=False)
    _allocations: List[Allocation] = field(init=False, default_factory=list)
    _starts: List[int] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.base < 0:
            raise AllocationError(f"heap base must be non-negative: {self.base}")
        if self.alignment <= 0 or self.alignment & (self.alignment - 1):
            raise AllocationError(
                f"alignment must be a positive power of two: {self.alignment}"
            )
        if self.guard_gap < 0:
            raise AllocationError(f"guard gap must be non-negative: {self.guard_gap}")
        self._cursor = _align_up(self.base, self.alignment)

    def malloc(
        self,
        size: int,
        label: str,
        *,
        align: Optional[int] = None,
        callsite_ip: int = 0,
    ) -> Allocation:
        """Allocate ``size`` bytes and record the range under ``label``.

        Args:
            size: Number of bytes; must be positive.
            label: Name used by data-centric attribution.
            align: Override the allocator's default alignment.
            callsite_ip: IP of the modeled allocating call.

        Returns:
            The new :class:`Allocation`.
        """
        if size <= 0:
            raise AllocationError(f"allocation size must be positive: {size}")
        alignment = align if align is not None else self.alignment
        if alignment <= 0 or alignment & (alignment - 1):
            raise AllocationError(f"alignment must be a power of two: {alignment}")
        start = _align_up(self._cursor, alignment)
        record = Allocation(start=start, size=size, label=label, callsite_ip=callsite_ip)
        self._cursor = start + size + self.guard_gap
        self._allocations.append(record)
        self._starts.append(start)
        return record

    def free(self, allocation: Allocation) -> None:
        """Mark an allocation as freed.

        The range stays in the log (CCProf keeps freed ranges so samples
        taken while the allocation was live still attribute correctly), but
        a double free is rejected.
        """
        index = self._index_of(allocation.start)
        current = self._allocations[index]
        if current.freed:
            raise AllocationError(f"double free of {allocation.label!r}")
        self._allocations[index] = Allocation(
            start=current.start,
            size=current.size,
            label=current.label,
            callsite_ip=current.callsite_ip,
            freed=True,
        )

    def _index_of(self, start: int) -> int:
        index = bisect.bisect_left(self._starts, start)
        if index == len(self._starts) or self._starts[index] != start:
            raise AllocationError(f"no allocation starting at {start:#x}")
        return index

    def find(self, address: int) -> Optional[Allocation]:
        """Return the allocation covering ``address``, or None.

        Freed allocations still resolve, matching CCProf's post-mortem
        attribution of samples captured before the free.
        """
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        candidate = self._allocations[index]
        return candidate if candidate.contains(address) else None

    def by_label(self, label: str) -> Allocation:
        """Return the first allocation with the given label."""
        for allocation in self._allocations:
            if allocation.label == label:
                return allocation
        raise AllocationError(f"no allocation labelled {label!r}")

    @property
    def allocations(self) -> List[Allocation]:
        """All allocations in allocation order (copies the log)."""
        return list(self._allocations)

    @property
    def bytes_allocated(self) -> int:
        """Total bytes handed out, excluding alignment slack and guards."""
        return sum(a.size for a in self._allocations)

    @property
    def high_water_mark(self) -> int:
        """One past the highest address handed out so far."""
        return self._cursor

    def __iter__(self) -> Iterator[Allocation]:
        return iter(self._allocations)

    def __len__(self) -> int:
        return len(self._allocations)
