"""Columnar trace batches.

The scalar trace representation — one :class:`~repro.trace.record.MemoryAccess`
object per reference — is flexible but slow: at millions of records, object
construction and per-field attribute access dominate every downstream
analysis.  A :class:`TraceBatch` stores the same five fields as parallel
NumPy arrays (one structured array, struct-of-arrays access via views), so
the hot paths — set-index/tag extraction, cache simulation, PEBS sampling,
RCD computation — can run vectorized over whole batches.

Batches interoperate with the existing iterator world in both directions:

- :meth:`TraceBatch.from_accesses` / :func:`iter_batches` convert any
  access iterable into (chunked) columnar form;
- :meth:`TraceBatch.to_accesses` / iteration yield the exact
  :class:`MemoryAccess` records back, so every scalar consumer keeps
  working on batched data.

The scalar code paths remain the *reference semantics*; batched kernels are
required (and differentially tested) to reproduce them access-for-access.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Union

import numpy as np

from repro.errors import TraceError
from repro.obs.metrics import get_registry
from repro.trace.record import AccessKind, MemoryAccess

#: Columnar record layout.  ``size`` is u2 (not u1 like the binary trace
#: format) so in-memory batches can carry accesses wider than 255 bytes.
TRACE_DTYPE = np.dtype(
    [
        ("ip", "<u8"),
        ("address", "<u8"),
        ("kind", "u1"),
        ("size", "<u2"),
        ("thread_id", "<u2"),
    ]
)

#: Default records per batch for chunked conversion.  Large enough to
#: amortize per-batch fixed costs — per-set grouping overhead falls off
#: sharply until each of the 64 sets gets a few hundred accesses per
#: batch — while keeping streaming memory bounded (~1.3 MiB of columns
#: per batch).
DEFAULT_BATCH_SIZE = 65536

_VALID_KINDS = frozenset(int(kind) for kind in AccessKind)


class TraceBatch:
    """A fixed-size run of memory accesses in columnar (NumPy) form.

    Wraps one structured array of :data:`TRACE_DTYPE`; the per-field
    properties return zero-copy column views.  Batches are value objects:
    helpers return new batches rather than mutating in place.
    """

    __slots__ = ("_records",)

    def __init__(self, records: np.ndarray) -> None:
        if records.dtype != TRACE_DTYPE:
            records = records.astype(TRACE_DTYPE, copy=False)
        self._records = records

    # -- construction --------------------------------------------------

    @classmethod
    def empty(cls) -> "TraceBatch":
        """A zero-length batch."""
        return cls(np.empty(0, dtype=TRACE_DTYPE))

    @classmethod
    def from_accesses(cls, accesses: Iterable[MemoryAccess]) -> "TraceBatch":
        """Materialize an access iterable into one columnar batch."""
        records = np.fromiter(
            (
                (access.ip, access.address, int(access.kind), access.size,
                 access.thread_id)
                for access in accesses
            ),
            dtype=TRACE_DTYPE,
        )
        return cls(records)

    @classmethod
    def from_arrays(
        cls,
        ip: Sequence[int],
        address: Sequence[int],
        kind: Union[Sequence[int], int] = int(AccessKind.LOAD),
        size: Union[Sequence[int], int] = 8,
        thread_id: Union[Sequence[int], int] = 0,
    ) -> "TraceBatch":
        """Assemble a batch from parallel columns (scalars broadcast)."""
        address_column = np.asarray(address, dtype=np.uint64)
        records = np.empty(address_column.size, dtype=TRACE_DTYPE)
        records["ip"] = np.asarray(ip, dtype=np.uint64)
        records["address"] = address_column
        records["kind"] = kind
        records["size"] = size
        records["thread_id"] = thread_id
        return cls(records)

    @classmethod
    def concat(cls, batches: Iterable["TraceBatch"]) -> "TraceBatch":
        """Concatenate several batches into one."""
        arrays = [batch._records for batch in batches]
        if not arrays:
            return cls.empty()
        return cls(np.concatenate(arrays))

    # -- columns -------------------------------------------------------

    @property
    def records(self) -> np.ndarray:
        """The underlying structured array (treat as read-only)."""
        return self._records

    @property
    def ip(self) -> np.ndarray:
        """Instruction-pointer column (u8 view)."""
        return self._records["ip"]

    @property
    def address(self) -> np.ndarray:
        """Effective-address column (u8 view)."""
        return self._records["address"]

    @property
    def kind(self) -> np.ndarray:
        """Access-kind column (u1 view; :class:`AccessKind` values)."""
        return self._records["kind"]

    @property
    def size(self) -> np.ndarray:
        """Access-width column in bytes (u2 view)."""
        return self._records["size"]

    @property
    def thread_id(self) -> np.ndarray:
        """Thread-id column (u2 view)."""
        return self._records["thread_id"]

    @property
    def columns(self) -> "tuple[np.ndarray, np.ndarray]":
        """The engine data plane's payload: ``(address, ip)`` views.

        Zero-copy views into the structured array — what batched kernels
        consume and what the sharded engine's shared-memory arena maps.
        """
        return self._records["address"], self._records["ip"]

    def copy_columns_into(self, address: np.ndarray, ip: np.ndarray) -> int:
        """Write the data-plane columns into caller-owned buffers.

        The batch→shared-view adapter: ``address``/``ip`` are typically
        views over a :class:`~repro.engine.arena.SharedTraceArena`
        segment, so this is the single copy that replaces the old
        pickle → pipe → unpickle round trip.  Buffers must hold at least
        ``len(self)`` u8 entries; returns the record count written.
        """
        count = self._records.size
        np.copyto(address[:count], self._records["address"])
        np.copyto(ip[:count], self._records["ip"])
        return count

    @property
    def is_load(self) -> np.ndarray:
        """Boolean mask of data loads (the PEBS-sampled kind)."""
        return self._records["kind"] == int(AccessKind.LOAD)

    @property
    def is_store(self) -> np.ndarray:
        """Boolean mask of data stores."""
        return self._records["kind"] == int(AccessKind.STORE)

    # -- protocol ------------------------------------------------------

    def __len__(self) -> int:
        return self._records.size

    def __bool__(self) -> bool:
        return self._records.size > 0

    def __getitem__(self, key) -> Union[MemoryAccess, "TraceBatch"]:
        """Row access: an int yields a :class:`MemoryAccess`; a slice or
        boolean/index array yields a sub-batch."""
        if isinstance(key, (int, np.integer)):
            return self._record_at(int(key))
        selected = self._records[key]
        if selected.ndim == 0:  # structured scalar from fancy indexing
            selected = selected.reshape(1)
        return TraceBatch(np.ascontiguousarray(selected))

    def __iter__(self) -> Iterator[MemoryAccess]:
        return self.to_accesses()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceBatch):
            return NotImplemented
        return bool(np.array_equal(self._records, other._records))

    def __repr__(self) -> str:
        return f"TraceBatch({len(self)} records)"

    def _record_at(self, index: int) -> MemoryAccess:
        row = self._records[index]
        return MemoryAccess(
            ip=int(row["ip"]),
            address=int(row["address"]),
            kind=AccessKind(int(row["kind"])),
            size=int(row["size"]),
            thread_id=int(row["thread_id"]),
        )

    # -- conversion ----------------------------------------------------

    def to_accesses(self) -> Iterator[MemoryAccess]:
        """Yield the batch back as scalar :class:`MemoryAccess` records."""
        ips = self._records["ip"].tolist()
        addresses = self._records["address"].tolist()
        kinds = self._records["kind"].tolist()
        sizes = self._records["size"].tolist()
        threads = self._records["thread_id"].tolist()
        for ip, address, kind, size, thread_id in zip(
            ips, addresses, kinds, sizes, threads
        ):
            yield MemoryAccess(
                ip=ip,
                address=address,
                kind=AccessKind(kind),
                size=size,
                thread_id=thread_id,
            )

    def to_list(self) -> List[MemoryAccess]:
        """Materialize the batch as a list of scalar records."""
        return list(self.to_accesses())

    # -- validation ----------------------------------------------------

    def validate(self) -> "TraceBatch":
        """Vectorized analogue of :meth:`MemoryAccess.validate`.

        Addresses and IPs are unsigned by construction, so only the kind
        and size columns can be out of range.
        """
        kinds = self._records["kind"]
        if kinds.size and not np.isin(kinds, list(_VALID_KINDS)).all():
            bad = int(kinds[~np.isin(kinds, list(_VALID_KINDS))][0])
            raise TraceError(f"batch contains unknown access kind {bad}")
        sizes = self._records["size"]
        if sizes.size and int(sizes.min()) <= 0:
            raise TraceError("batch contains non-positive access size")
        return self

    def valid_mask(self) -> np.ndarray:
        """Boolean mask of records that pass :meth:`validate` (lenient
        readers quarantine the complement instead of raising)."""
        kinds = self._records["kind"]
        return np.isin(kinds, list(_VALID_KINDS)) & (self._records["size"] > 0)


def _observe_batch(batch: TraceBatch) -> TraceBatch:
    """Charge one yielded batch into the obs registry (per batch, never
    per access; no-ops entirely under a disabled registry)."""
    registry = get_registry()
    if registry.enabled:
        registry.counter("trace.batch.batches").inc()
        registry.counter("trace.batch.records").inc(len(batch))
        registry.histogram("trace.batch.size").observe(len(batch))
    return batch


def iter_batches(
    stream: Iterable[MemoryAccess], batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[TraceBatch]:
    """Chunk a scalar access stream into columnar batches.

    The streaming analogue of :meth:`TraceBatch.from_accesses`: at most
    ``batch_size`` records are buffered at a time, so unbounded traces
    convert in bounded memory.  The final batch may be shorter.
    """
    if batch_size <= 0:
        raise TraceError(f"batch size must be positive: {batch_size}")
    iterator = iter(stream)
    buffer: List[MemoryAccess] = []
    for access in iterator:
        buffer.append(access)
        if len(buffer) >= batch_size:
            yield _observe_batch(TraceBatch.from_accesses(buffer))
            buffer = []
    if buffer:
        yield _observe_batch(TraceBatch.from_accesses(buffer))


def as_access_stream(
    trace: Union[TraceBatch, Iterable],
) -> Iterator[MemoryAccess]:
    """Normalize any trace shape into a scalar access stream.

    The inverse counterpart of :func:`as_batches`: accepts a single
    :class:`TraceBatch`, an iterable of batches, or an iterable of
    scalar accesses, and yields :class:`MemoryAccess` records — what the
    scalar reference engine consumes regardless of how the trace was
    handed over.
    """
    if isinstance(trace, TraceBatch):
        yield from trace.to_accesses()
        return
    iterator = iter(trace)
    try:
        first = next(iterator)
    except StopIteration:
        return
    if isinstance(first, TraceBatch):
        yield from first.to_accesses()
        for batch in iterator:
            yield from batch.to_accesses()
        return
    if not isinstance(first, MemoryAccess):
        raise TraceError(
            f"cannot stream trace of {type(first).__name__}; expected "
            "MemoryAccess or TraceBatch elements"
        )
    yield first
    yield from iterator


def as_batches(
    trace: Union[TraceBatch, Iterable], batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[TraceBatch]:
    """Normalize any trace shape into a batch iterator.

    Accepts a single :class:`TraceBatch`, an iterable of batches, or an
    iterable of scalar accesses — the entry point batched engines use so
    callers never care which shape they hold.
    """
    if isinstance(trace, TraceBatch):
        yield _observe_batch(trace)
        return
    iterator = iter(trace)
    try:
        first = next(iterator)
    except StopIteration:
        return
    if isinstance(first, TraceBatch):
        yield _observe_batch(first)
        for batch in iterator:
            yield _observe_batch(batch)
        return
    if not isinstance(first, MemoryAccess):
        raise TraceError(
            f"cannot batch stream of {type(first).__name__}; expected "
            "MemoryAccess or TraceBatch elements"
        )

    def _chain() -> Iterator[MemoryAccess]:
        yield first
        yield from iterator

    yield from iter_batches(_chain(), batch_size)
