"""Memory access records.

A trace is a sequence of :class:`MemoryAccess` records.  Each record carries
the information CCProf's two observation channels need:

- the *instruction pointer* (``ip``) for code-centric attribution,
- the *effective data address* (``address``) for cache-set and data-centric
  attribution,
- the access kind (load / store / instruction fetch) because the PMU event
  the paper samples (``MEM_LOAD_UOPS_RETIRED:L1_MISS``) counts loads only,
- the byte ``size`` of the access, and
- the ``thread_id`` since CCProf monitors each thread individually.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class AccessKind(enum.IntEnum):
    """Kind of memory access, mirroring Dinero IV's reference types."""

    LOAD = 0
    STORE = 1
    IFETCH = 2

    @classmethod
    def from_dinero(cls, code: str) -> "AccessKind":
        """Map a Dinero IV ``.din`` label (``r``/``w``/``i`` or ``0/1/2``)."""
        mapping = {
            "r": cls.LOAD,
            "w": cls.STORE,
            "i": cls.IFETCH,
            "0": cls.LOAD,
            "1": cls.STORE,
            "2": cls.IFETCH,
        }
        try:
            return mapping[code.lower()]
        except KeyError:
            raise ValueError(f"unknown Dinero access code: {code!r}") from None

    def to_dinero(self) -> str:
        """Render as the numeric Dinero IV ``.din`` label."""
        return str(int(self))


class MemoryAccess(NamedTuple):
    """One memory reference in a trace.

    A NamedTuple rather than a dataclass: traces run to millions of records
    and construction cost dominates trace generation, so field validation is
    deferred to :meth:`validate` (invoked by the trace-file readers, where
    malformed data can actually enter the system).

    Attributes:
        ip: Instruction pointer issuing the access.
        address: Effective (virtual) data address referenced.
        kind: Load, store, or instruction fetch.
        size: Access width in bytes (default 8: one double).
        thread_id: Logical thread that issued the access.
    """

    ip: int
    address: int
    kind: AccessKind = AccessKind.LOAD
    size: int = 8
    thread_id: int = 0

    def validate(self) -> "MemoryAccess":
        """Check field ranges; returns self so readers can chain it."""
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.ip < 0:
            raise ValueError(f"ip must be non-negative, got {self.ip}")
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size}")
        return self

    @property
    def is_load(self) -> bool:
        """True when this access is a data load (the PEBS-sampled kind)."""
        return self.kind is AccessKind.LOAD

    @property
    def is_store(self) -> bool:
        """True when this access is a data store."""
        return self.kind is AccessKind.STORE

    def end_address(self) -> int:
        """One past the last byte touched by this access."""
        return self.address + self.size

    def line_address(self, line_size: int) -> int:
        """The cache-line-aligned address this access falls in."""
        return self.address & ~(line_size - 1)
