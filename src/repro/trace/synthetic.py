"""Synthetic trace generators.

Parameterized reference-pattern generators for stress tests, calibration,
and property experiments — the standard trio of locality models:

- :func:`uniform_trace` — uniformly random lines over a working set (the
  no-locality baseline);
- :func:`zipf_trace` — Zipf-distributed line popularity (hot/cold skew,
  the shape of real data accesses);
- :func:`markov_trace` — a two-state burst model alternating sequential
  runs with random jumps (phase-like behaviour).

Every generator is seeded and deterministic.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.record import MemoryAccess

#: Base address used when callers don't supply one.
DEFAULT_BASE = 0x6000_0000


def uniform_trace(
    count: int,
    working_set_lines: int,
    *,
    line_size: int = 64,
    base: int = DEFAULT_BASE,
    ip: int = 0x400100,
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """Uniformly random accesses over ``working_set_lines`` lines."""
    if count < 0 or working_set_lines <= 0:
        raise TraceError("count must be >= 0 and working set positive")
    rng = random.Random(seed)
    for _ in range(count):
        line = rng.randrange(working_set_lines)
        yield MemoryAccess(ip=ip, address=base + line * line_size)


def zipf_weights(n: int, exponent: float) -> Sequence[float]:
    """Normalized Zipf probabilities for ranks 1..n."""
    if n <= 0:
        raise TraceError(f"need a positive support size: {n}")
    if exponent <= 0:
        raise TraceError(f"Zipf exponent must be positive: {exponent}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-exponent
    return (weights / weights.sum()).tolist()


def zipf_trace(
    count: int,
    working_set_lines: int,
    *,
    exponent: float = 1.1,
    line_size: int = 64,
    base: int = DEFAULT_BASE,
    ip: int = 0x400100,
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """Zipf-popular lines: rank 1 is hottest.

    Line ranks are shuffled over the address space so popularity does not
    correlate with address (and hence with cache set).
    """
    if count < 0:
        raise TraceError(f"count must be >= 0: {count}")
    weights = zipf_weights(working_set_lines, exponent)
    rng = np.random.default_rng(seed)
    placement = rng.permutation(working_set_lines)
    lines = rng.choice(working_set_lines, size=count, p=weights)
    for line in lines:
        yield MemoryAccess(
            ip=ip, address=base + int(placement[int(line)]) * line_size
        )


def markov_trace(
    count: int,
    working_set_lines: int,
    *,
    run_length: int = 32,
    jump_probability: float = 0.05,
    step_bytes: int = 8,
    line_size: int = 64,
    base: int = DEFAULT_BASE,
    ip: int = 0x400100,
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """Two-state burst model: sequential runs, occasional random jumps.

    In the sequential state the cursor advances ``step_bytes`` per access
    (element-sized steps, so several accesses share a line — real
    streaming locality); with probability ``jump_probability`` (or at the
    end of a ``run_length`` run) it jumps to a random line.
    """
    if count < 0 or working_set_lines <= 0:
        raise TraceError("count must be >= 0 and working set positive")
    if not 0.0 <= jump_probability <= 1.0:
        raise TraceError(f"jump probability must be in [0, 1]: {jump_probability}")
    if run_length <= 0:
        raise TraceError(f"run length must be positive: {run_length}")
    if step_bytes <= 0:
        raise TraceError(f"step must be positive: {step_bytes}")
    rng = random.Random(seed)
    span = working_set_lines * line_size
    cursor = rng.randrange(working_set_lines) * line_size
    steps_in_run = 0
    for _ in range(count):
        yield MemoryAccess(ip=ip, address=base + cursor)
        steps_in_run += 1
        if steps_in_run >= run_length or rng.random() < jump_probability:
            cursor = rng.randrange(working_set_lines) * line_size
            steps_in_run = 0
        else:
            cursor = (cursor + step_bytes) % span
