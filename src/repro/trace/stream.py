"""Composable memory-trace streams.

Workload kernels produce iterables of :class:`~repro.trace.record.MemoryAccess`.
These helpers assemble, slice, and reshape such iterables without ever
materializing a full trace unless the caller asks for one, which keeps the
memory footprint of whole-application analysis bounded — the same reason the
paper prefers sampling over full tracing.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, List, Sequence

import numpy as np

from repro.trace.batch import DEFAULT_BATCH_SIZE, TraceBatch, iter_batches
from repro.trace.record import MemoryAccess

#: A trace stream is any iterable of memory accesses.
TraceStream = Iterable[MemoryAccess]

#: A batch stream is any iterable of columnar trace batches.
BatchStream = Iterable[TraceBatch]


def concat_traces(*streams: TraceStream) -> Iterator[MemoryAccess]:
    """Chain several trace streams end to end (program phases)."""
    return itertools.chain.from_iterable(streams)


def take(stream: TraceStream, count: int) -> Iterator[MemoryAccess]:
    """Yield at most ``count`` accesses from ``stream``."""
    if count < 0:
        raise ValueError(f"count must be non-negative: {count}")
    return itertools.islice(iter(stream), count)


def filter_by_ip(stream: TraceStream, ips: Iterable[int]) -> Iterator[MemoryAccess]:
    """Keep only accesses issued by the given instruction pointers.

    This mirrors the paper's "selectively trace and simulate hot loops":
    the simulator is pointed at the IPs the sampler flagged as hot.
    """
    wanted = frozenset(ips)
    return (access for access in stream if access.ip in wanted)


def filter_by_range(stream: TraceStream, start: int, end: int) -> Iterator[MemoryAccess]:
    """Keep only accesses whose data address falls in ``[start, end)``."""
    if end < start:
        raise ValueError(f"empty range: [{start:#x}, {end:#x})")
    return (access for access in stream if start <= access.address < end)


def filter_loads(stream: TraceStream) -> Iterator[MemoryAccess]:
    """Keep only data loads — the accesses the paper's PMU event counts."""
    return (access for access in stream if access.is_load)


def map_accesses(
    stream: TraceStream, transform: Callable[[MemoryAccess], MemoryAccess]
) -> Iterator[MemoryAccess]:
    """Apply a per-access transform (e.g. address relocation)."""
    return (transform(access) for access in stream)


def relocate(stream: TraceStream, delta: int) -> Iterator[MemoryAccess]:
    """Shift every data address by ``delta`` bytes."""
    for access in stream:
        yield MemoryAccess(
            ip=access.ip,
            address=access.address + delta,
            kind=access.kind,
            size=access.size,
            thread_id=access.thread_id,
        )


def interleave_round_robin(streams: Sequence[TraceStream], chunk: int = 1) -> Iterator[MemoryAccess]:
    """Round-robin interleave several streams, ``chunk`` accesses at a time.

    Used to build simple multi-threaded reference patterns from per-thread
    kernels; exhausted streams drop out and the rest continue.
    """
    if chunk <= 0:
        raise ValueError(f"chunk must be positive: {chunk}")
    iterators: List[Iterator[MemoryAccess]] = [iter(s) for s in streams]
    while iterators:
        still_alive: List[Iterator[MemoryAccess]] = []
        for iterator in iterators:
            emitted = list(itertools.islice(iterator, chunk))
            if emitted:
                yield from emitted
                still_alive.append(iterator)
        iterators = still_alive


def windowed(stream: TraceStream, window: int) -> Iterator[List[MemoryAccess]]:
    """Split a stream into consecutive windows of ``window`` accesses.

    The final window may be shorter.  Useful for phase-wise analysis of
    dynamic access patterns (the workload property DProf assumes away and
    CCProf handles, §7.1).
    """
    if window <= 0:
        raise ValueError(f"window must be positive: {window}")
    iterator = iter(stream)
    while True:
        block = list(itertools.islice(iterator, window))
        if not block:
            return
        yield block


def batched(
    stream: TraceStream, size: int = DEFAULT_BATCH_SIZE
) -> Iterator[TraceBatch]:
    """Chunk a scalar stream into columnar :class:`TraceBatch` runs.

    The bridge between the composable scalar helpers above and the
    vectorized engines: ``batched(take(trace, n))`` or
    ``batched(filter_loads(trace))`` convert lazily, ``size`` accesses at
    a time, without materializing the full trace.
    """
    return iter_batches(stream, size)


def unbatched(batches: BatchStream) -> Iterator[MemoryAccess]:
    """Flatten a batch stream back into scalar accesses.

    The inverse bridge: every scalar helper composes with batched data via
    ``take(unbatched(batches), n)`` and friends.
    """
    for batch in batches:
        yield from batch.to_accesses()


def filter_batches_by_ip(
    batches: BatchStream, ips: Iterable[int]
) -> Iterator[TraceBatch]:
    """Vectorized :func:`filter_by_ip` over a batch stream.

    One ``np.isin`` per batch replaces the per-access membership test;
    batches that lose every record are dropped rather than yielded empty.
    """
    wanted = np.fromiter((int(ip) for ip in ips), dtype=np.uint64)
    for batch in batches:
        mask = np.isin(batch.ip, wanted)
        if mask.all():
            yield batch
        elif mask.any():
            yield batch[mask]


def take_batches(batches: BatchStream, count: int) -> Iterator[TraceBatch]:
    """Yield at most ``count`` accesses from a batch stream, splitting the
    final batch as needed (batch analogue of :func:`take`)."""
    if count < 0:
        raise ValueError(f"count must be non-negative: {count}")
    remaining = count
    for batch in batches:
        if remaining <= 0:
            return
        if len(batch) <= remaining:
            remaining -= len(batch)
            yield batch
        else:
            yield batch[:remaining]
            return


def concat_batch_streams(*streams: BatchStream) -> Iterator[TraceBatch]:
    """Chain several batch streams end to end (batch analogue of
    :func:`concat_traces`)."""
    return itertools.chain.from_iterable(streams)


def materialize(stream: TraceStream) -> List[MemoryAccess]:
    """Force a stream into a list (for repeated-pass analyses)."""
    return list(stream)


def count_accesses(stream: TraceStream) -> int:
    """Consume a stream and return its length."""
    return sum(1 for _ in stream)
