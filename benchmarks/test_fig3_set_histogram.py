"""Figure 3 — miss sequence, per-set histogram, imbalance detection.

Paper: a sequence of cache-set misses is histogrammed per set; a skewed
histogram (set S1 evicted 4x while S0 once) signals conflicts (Observation
1).  This bench regenerates the histogram for a conflicting and a balanced
miss sequence produced by real cache simulation, and quantifies the skew
with the Gini coefficient.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.reporting.tables import Table
from repro.stats.distributions import gini_coefficient
from repro.trace.record import MemoryAccess

from benchmarks.conftest import emit


def _miss_set_sequence(addresses, geometry):
    cache = SetAssociativeCache(geometry)
    sequence = []
    for address in addresses:
        if cache.access(address).miss:
            sequence.append(geometry.set_index(address))
    return sequence


def _run():
    geometry = CacheGeometry()
    period = geometry.mapping_period
    # Conflicting: 16 lines folded onto 4 sets, revisited.
    conflicting = []
    for _ in range(200):
        for i in range(16):
            conflicting.append(i * period + (i % 4) * geometry.line_size)
    # Balanced: a long stream touching every set equally.
    balanced = [i * geometry.line_size for i in range(16 * geometry.num_sets)]

    results = {}
    for name, addresses in (("conflicting", conflicting), ("balanced", balanced)):
        sequence = _miss_set_sequence(addresses, geometry)
        counts = [0] * geometry.num_sets
        for set_index in sequence:
            counts[set_index] += 1
        results[name] = (sequence, counts, gini_coefficient(counts))
    return results


def test_fig3_per_set_miss_histogram(benchmark, result_dir):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Figure 3 - per-set miss histogram skew",
        headers=["pattern", "misses", "sets w/ misses", "max/set", "gini"],
    )
    for name, (sequence, counts, gini) in results.items():
        table.add_row(
            name,
            len(sequence),
            sum(1 for count in counts if count),
            max(counts),
            f"{gini:.3f}",
        )
    conflict_counts = results["conflicting"][1]
    histogram_lines = ["", "conflicting pattern per-set miss counts (sets 0..15):"]
    histogram_lines.append(" ".join(f"{c:4d}" for c in conflict_counts[:16]))
    emit(
        result_dir,
        "fig3_set_histogram.txt",
        table.render() + "\n" + "\n".join(histogram_lines),
    )

    # Shape: the conflicting pattern concentrates misses; balanced does not.
    assert results["conflicting"][2] > 0.8
    assert results["balanced"][2] < 0.1


def test_fig3_observation1_imbalance_detects_conflict(benchmark, result_dir):
    """Observation 1: more misses on a subgroup of sets => conflicts there."""

    def run():
        geometry = CacheGeometry()
        results = _run()
        sequence, counts, _ = results["conflicting"]
        mean = sum(counts) / len(counts)
        victims = [s for s, count in enumerate(counts) if count > 4 * mean]
        return victims

    victims = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result_dir, "fig3_victim_sets.txt", f"victim sets: {victims}")
    assert victims == [0, 1, 2, 3]  # the 4 folded sets
