"""PolyBench/C suite sweep (paper §5: "applications from Rodinia and
PolyBench/C benchmark suite").

Companion to the Figure 7 Rodinia sweep: short-RCD contribution per
PolyBench kernel, original vs padded.  The linear-algebra kernels with
transposed-operand walks (gemm, 2mm, trmm) and ADI flag as conflicting and
are cured by padding; the row-order stencils (jacobi-2d, fdtd-2d) are clean
in both variants.
"""

from __future__ import annotations

import itertools

from repro.cache.geometry import CacheGeometry
from repro.core.contribution import contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.pmu.periods import FixedPeriod
from repro.pmu.sampler import AddressSampler
from repro.reporting.tables import Table
from repro.workloads.adi import AdiWorkload
from repro.workloads.polybench import (
    Fdtd2dWorkload,
    GemmWorkload,
    Jacobi2dWorkload,
    TrmmWorkload,
    TwoMmWorkload,
)

from benchmarks.conftest import emit

#: Accesses sampled per kernel variant (steady state shows well before the
#: full matmul traces end).
WINDOW = 400_000

KERNELS = [
    ("gemm", lambda: GemmWorkload.original(n=128), lambda: GemmWorkload.padded(n=128), True),
    ("2mm", lambda: TwoMmWorkload.original(n=64), lambda: TwoMmWorkload.padded(n=64), True),
    ("trmm", lambda: TrmmWorkload.original(n=128), lambda: TrmmWorkload.padded(n=128), True),
    ("adi", lambda: AdiWorkload.original(n=256), lambda: AdiWorkload.padded(n=256), True),
    ("jacobi-2d", lambda: Jacobi2dWorkload.original(n=256), lambda: Jacobi2dWorkload.padded(n=256), False),
    ("fdtd-2d", lambda: Fdtd2dWorkload.original(n=256), lambda: Fdtd2dWorkload.padded(n=256), False),
]


def _sampled_cf(factory, geometry):
    sampler = AddressSampler(geometry, period=FixedPeriod(17))
    result = sampler.run(itertools.islice(factory().trace(), WINDOW))
    analysis = RcdAnalysis.from_addresses(
        (sample.address for sample in result.samples), geometry
    )
    return contribution_factor(analysis)


def _run():
    geometry = CacheGeometry()
    rows = []
    for name, original_factory, padded_factory, expect_conflict in KERNELS:
        rows.append(
            (
                name,
                _sampled_cf(original_factory, geometry),
                _sampled_cf(padded_factory, geometry),
                expect_conflict,
            )
        )
    return rows


def test_polybench_suite_sweep(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="PolyBench/C suite - contribution factor, original vs padded",
        headers=["kernel", "cf original", "cf padded", "expected"],
    )
    for name, original_cf, padded_cf, expect in rows:
        table.add_row(
            name,
            f"{original_cf:.3f}",
            f"{padded_cf:.3f}",
            "conflict" if expect else "clean",
        )
    emit(result_dir, "polybench_suite.txt", table.render())

    for name, original_cf, padded_cf, expect_conflict in rows:
        if expect_conflict:
            assert original_cf > 0.3, f"{name}: original cf {original_cf:.3f}"
            assert padded_cf < 0.5 * original_cf, f"{name}: pad did not cure"
        else:
            assert original_cf < 0.3, f"{name}: stencil flagged ({original_cf:.3f})"
            assert padded_cf < 0.3, f"{name}: padded stencil flagged"
