"""Figures 4, 5, 6 — RCD locality signatures, RCD histograms, and conflict
periods vs sampling periods.

Paper: Figure 4 shows victim sets shifting over loop iterations; Figure 5
defines RCD and its per-set histogram; Figure 6 defines the conflict period
(CP) and argues CP must exceed the sampling period (SP) for detection.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.conflict_period import ConflictPeriodAnalysis
from repro.core.rcd import RcdAnalysis, compute_rcds
from repro.reporting.tables import Table

from benchmarks.conftest import emit


def _shifting_victim_sequence(num_sets=64, phase_length=60, phases=40):
    """Figure 4's pattern: the victim set moves every ``phase_length``
    misses (I1-I3 conflict on S1, I4-I5 on S2/S3, ...)."""
    sequence = []
    for phase in range(phases):
        victim = phase % num_sets
        background = [(victim + 7 * k) % num_sets for k in range(1, 4)]
        for i in range(phase_length // 4):
            sequence.append(victim)
            sequence.append(background[i % 3])
            sequence.append(victim)
            sequence.append(victim)
    return sequence


def _run():
    geometry = CacheGeometry()
    sequence = _shifting_victim_sequence(geometry.num_sets)
    analysis = RcdAnalysis.from_set_sequence(sequence, geometry.num_sets)
    balanced = list(range(geometry.num_sets)) * 40
    balanced_analysis = RcdAnalysis.from_set_sequence(balanced, geometry.num_sets)
    periods = ConflictPeriodAnalysis.from_observations(analysis.observations)
    return analysis, balanced_analysis, periods


def test_fig5_rcd_histogram_separates_patterns(benchmark, result_dir):
    analysis, balanced_analysis, _ = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Figure 5 - RCD distribution: shifting victims vs balanced",
        headers=["pattern", "observations", "mean RCD", "P(RCD<8)", "victim sets"],
    )
    for name, a in (("shifting-victims", analysis), ("balanced", balanced_analysis)):
        table.add_row(
            name,
            a.observation_count,
            f"{a.mean_rcd():.1f}",
            f"{a.cdf().probability_at(7):.2f}",
            len(a.victim_sets(threshold=8)),
        )
    emit(result_dir, "fig5_rcd_distribution.txt", table.render())

    # Observation 2: balanced -> RCD = N-1 everywhere; conflicts -> short.
    assert balanced_analysis.mean_rcd() == 63.0
    # The phase transitions contribute a few long RCDs, so the mean sits
    # above the mode but must stay well under the balanced N-1.
    assert analysis.mean_rcd() < 32
    assert analysis.cdf().probability_at(7) > 0.5
    assert balanced_analysis.cdf().probability_at(7) == 0.0


def test_fig6_conflict_period_vs_sampling_period(benchmark, result_dir):
    """Figure 6's detectability condition: CP > SP."""

    def run():
        _, _, periods = _run()
        sampling_periods = [5, 20, 60, 240, 1212]
        return periods, [
            (sp, periods.detectable_fraction(sp)) for sp in sampling_periods
        ]

    periods, fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        title="Figure 6 - detectable conflict-period fraction vs sampling period",
        headers=["sampling period", "runs with CP > SP"],
    )
    for sp, fraction in fractions:
        table.add_row(sp, f"{fraction:.2f}")
    summary = f"mean CP span: {periods.mean_span_in_misses():.1f} misses"
    emit(result_dir, "fig6_conflict_period.txt", table.render() + "\n" + summary)

    # Shape: detectability is monotone non-increasing in the period.
    values = [fraction for _, fraction in fractions]
    assert values == sorted(values, reverse=True)
    assert values[0] > values[-1]
