"""Ablation — replacement policy: does the conflict signal survive?

The paper's model (and Dinero IV) is LRU, but real Intel L1s use a
tree-PLRU approximation.  This bench re-measures the ADI conflict signal
(contribution factor of the hot loop) under LRU, tree-PLRU, FIFO, and
random replacement: the RCD signal must separate the original from the
padded variant under *every* policy for CCProf's conclusions to transfer to
real hardware.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.contribution import contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.pmu.periods import FixedPeriod
from repro.pmu.sampler import AddressSampler
from repro.reporting.tables import Table
from repro.workloads.adi import AdiWorkload

from benchmarks.conftest import emit

POLICIES = ["lru", "plru", "fifo", "random"]


def _hot_cf(workload, geometry, policy):
    sampler = AddressSampler(geometry, period=FixedPeriod(19), policy=policy)
    result = sampler.run(workload.trace())
    analysis = RcdAnalysis.from_addresses(
        (sample.address for sample in result.samples), geometry
    )
    return contribution_factor(analysis)


def _run():
    geometry = CacheGeometry()
    rows = []
    for policy in POLICIES:
        original = _hot_cf(AdiWorkload.original(n=128), geometry, policy)
        padded = _hot_cf(AdiWorkload.padded(n=128), geometry, policy)
        rows.append((policy, original, padded))
    return rows


def test_ablation_replacement_policy(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Ablation - ADI conflict signal (cf) across replacement policies",
        headers=["policy", "cf original", "cf padded", "separation"],
    )
    for policy, original, padded in rows:
        table.add_row(policy, f"{original:.3f}", f"{padded:.3f}", f"{original - padded:.3f}")
    emit(result_dir, "ablation_replacement.txt", table.render())

    for policy, original, padded in rows:
        # The signal separates the variants under every policy.
        assert original > 0.5, f"{policy}: original cf {original:.3f}"
        assert padded < 0.5 * original, f"{policy}: padded cf {padded:.3f}"
