"""Ablation — physically-indexed outer levels (the paper's footnote 1).

The paper profiles only the virtually-indexed L1 and defers L2/LLC, which
are physically indexed, to future work.  This extension quantifies what
that deferral hides: with 4 KiB pages, an L2 set index takes bits above the
page offset, so whether a virtual-space conflict survives at L2 depends on
the OS frame allocator —

- identity / huge-page mapping preserves the conflict exactly,
- random frame placement (a fragmented machine) scrambles it away.

The L1 conflict, in contrast, is invariant to the mapping (VIPT), which is
exactly why the paper's L1-based detection is robust.
"""

from __future__ import annotations

from repro.cache.geometry import PAPER_L1, PAPER_L2
from repro.cache.translation import (
    HUGE_PAGE_SIZE,
    FramePolicy,
    PageMapper,
    PhysicallyIndexedHierarchy,
)
from repro.reporting.tables import Table
from repro.trace.record import MemoryAccess

from benchmarks.conftest import emit


def _l2_aliasing_trace(repeats=40):
    """A column walk at one L2 mapping period (32 KiB): under identity
    mapping every reference folds into a single L2 set."""
    stride = PAPER_L2.mapping_period
    for _ in range(repeats):
        for i in range(32):
            yield MemoryAccess(ip=0x400100, address=0x4000_0000 + i * stride)


def _run():
    configurations = [
        ("identity 4K pages", PageMapper(FramePolicy.IDENTITY)),
        ("sequential 4K pages", PageMapper(FramePolicy.SEQUENTIAL)),
        ("random 4K pages", PageMapper(FramePolicy.RANDOM, seed=11)),
        ("identity 2M huge pages", PageMapper(FramePolicy.IDENTITY, page_size=HUGE_PAGE_SIZE)),
        ("random 2M huge pages", PageMapper(FramePolicy.RANDOM, page_size=HUGE_PAGE_SIZE, seed=11)),
    ]
    rows = []
    for name, mapper in configurations:
        hierarchy = PhysicallyIndexedHierarchy(
            [PAPER_L1, PAPER_L2], mapper, names=["L1", "L2"]
        )
        misses = hierarchy.run_trace(_l2_aliasing_trace())
        rows.append((name, misses["L1"], misses["L2"], mapper.pages_mapped))
    return rows


def test_ablation_physical_indexing(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Ablation - L2 conflicts vs frame-allocation policy (32 KiB-stride walk)",
        headers=["mapping", "L1 misses", "L2 misses", "pages"],
    )
    results = {}
    for name, l1, l2, pages in rows:
        results[name] = (l1, l2)
        table.add_row(name, l1, l2, pages)
    emit(
        result_dir,
        "ablation_physical_indexing.txt",
        table.render()
        + "\npaper footnote 1: physically-indexed L2/LLC profiling deferred; "
        "this shows why the L1 (VIPT) signal is mapping-invariant.",
    )

    # L1 is virtually indexed: identical under every mapping.
    l1_counts = {l1 for l1, _ in results.values()}
    assert len(l1_counts) == 1
    # Identity preserves the L2 conflict; random 4K pages destroy most of it.
    assert results["identity 4K pages"][1] > 5 * results["random 4K pages"][1]
    # Huge pages cover the L2 index bits: random placement no longer helps.
    assert (
        results["random 2M huge pages"][1]
        == results["identity 2M huge pages"][1]
    )
