"""The conflict gap — why reuse distance is not enough (paper §1).

The paper's framing: capacity misses are modelled by reuse distance;
conflict misses are the misses that model *cannot* explain.  This bench
measures both quantities for each case-study kernel: the set-associative
miss ratio (simulated) minus the fully-associative prediction from the
reuse-distance histogram is the conflict mass CCProf exists to find — and
it collapses in the optimized variants.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.reuse import conflict_gap
from repro.reporting.tables import Table, format_percent
from repro.workloads.adi import AdiWorkload
from repro.workloads.kripke import KripkeWorkload
from repro.workloads.symmetrization import SymmetrizationWorkload
from repro.workloads.tinydnn import TinyDnnFcWorkload

from benchmarks.conftest import emit

SUBJECTS = [
    ("symmetrization", lambda: SymmetrizationWorkload.original(n=128, sweeps=2),
     lambda: SymmetrizationWorkload.padded(n=128, sweeps=2)),
    ("adi", lambda: AdiWorkload.original(n=128),
     lambda: AdiWorkload.padded(n=128)),
    ("tiny-dnn", lambda: TinyDnnFcWorkload.original(in_size=256, out_size=128),
     lambda: TinyDnnFcWorkload.padded(in_size=256, out_size=128)),
    ("kripke", lambda: KripkeWorkload.original(zones=64, sweeps=2),
     lambda: KripkeWorkload.optimized(zones=64, sweeps=2)),
]


def _run():
    geometry = CacheGeometry()
    rows = []
    for name, original_factory, optimized_factory in SUBJECTS:
        def make_stream(factory):
            return lambda: factory().trace()

        original = conflict_gap(make_stream(original_factory), geometry)
        optimized = conflict_gap(make_stream(optimized_factory), geometry)
        rows.append((name, original, optimized))
    return rows


def test_conflict_gap_collapses_after_optimization(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Conflict gap - measured miss ratio minus capacity-model prediction",
        headers=[
            "kernel", "variant", "measured", "capacity model", "conflict gap",
        ],
    )
    gaps = {}
    for name, original, optimized in rows:
        for variant, data in (("original", original), ("optimized", optimized)):
            table.add_row(
                name,
                variant,
                format_percent(data["measured_miss_ratio"]),
                format_percent(data["capacity_model_miss_ratio"]),
                format_percent(data["conflict_gap"]),
            )
        gaps[name] = (original["conflict_gap"], optimized["conflict_gap"])
    emit(result_dir, "conflict_gap.txt", table.render())

    for name, (before, after) in gaps.items():
        if name == "kripke":
            # Kripke is the instructive exception: its column-order walk has
            # whole-array reuse distances, so the *fully-associative* model
            # misses just as much — by strict three-C accounting this is a
            # capacity/locality pathology, not an associativity one.  RCD
            # still flags it (the paper treats set-concentrated capacity
            # misses as conflicts, §3.3) and the loop reorder still fixes
            # it, but it produces no 3C conflict gap.
            assert abs(before) < 0.05
            continue
        # Every other original kernel has a real conflict gap; optimization
        # closes (nearly) all of it.
        assert before > 0.05, f"{name}: gap only {before:.3f}"
        assert after < 0.5 * before, f"{name}: {before:.3f} -> {after:.3f}"
