"""Figure 2 / §2.1 — the motivating symmetrization example.

Paper: padding each matrix row by 64 bytes reduces L2 cache misses by up to
91.4%, because the column walk spreads from 4 sets across all 64 (Figure
2-b vs 2-c).

Two scales are run:

- the paper's 128x128 matrix, where (in our virtually-indexed single-core
  model) the fold happens at the *L1* set array — the 128 KiB matrix fits
  in L2, so L2 traffic is cold-only and the reduction shows up at L1;
- a 512x512 matrix whose 4096-byte pitch aliases the *L2* set array, which
  reproduces the paper's headline "L2 misses reduced by up to 91.4%"
  directly (we measure ~79%).
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy, miss_reduction
from repro.cache.set_assoc import SetAssociativeCache
from repro.reporting.tables import Table, format_percent
from repro.workloads.symmetrization import SymmetrizationWorkload

from benchmarks.conftest import emit


def _run_scale(n, sweeps):
    variants = {
        "original": SymmetrizationWorkload(n=n, pad_bytes=0, sweeps=sweeps),
        "padded-64B": SymmetrizationWorkload(n=n, pad_bytes=64, sweeps=sweeps),
    }
    hierarchy_results = {}
    set_usage = {}
    for name, workload in variants.items():
        hierarchy = CacheHierarchy.broadwell()
        hierarchy_results[name] = hierarchy.run_trace(workload.trace())
        l1 = SetAssociativeCache(CacheGeometry())
        l1.run_trace(workload.trace())
        set_usage[name] = l1.stats.sets_utilized()
    return hierarchy_results, set_usage


def _run():
    return {
        "128x128 (paper size)": _run_scale(128, sweeps=2),
        "512x512 (L2-scale)": _run_scale(512, sweeps=1),
    }


def test_fig2_symmetrization_padding(benchmark, result_dir):
    scales = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Figure 2 - symmetrization, 64 B row pad",
        headers=["scale", "variant", "L1 miss", "L2 miss", "LLC miss", "L1 sets hit"],
    )
    reductions = {}
    for scale, (results, set_usage) in scales.items():
        for name, result in results.items():
            table.add_row(
                scale,
                name,
                result.level("L1").misses,
                result.level("L2").misses,
                result.level("LLC").misses,
                set_usage[name],
            )
        reductions[scale] = miss_reduction(
            results["original"], results["padded-64B"]
        )
    lines = [table.render(), ""]
    for scale, (l1_red, l2_red, llc_red) in reductions.items():
        lines.append(
            f"{scale}: reduction L1 {format_percent(l1_red)}, "
            f"L2 {format_percent(l2_red)}, LLC {format_percent(llc_red)}"
        )
    lines.append("paper reports: L2 miss reduction up to 91.4%")
    emit(result_dir, "fig2_symmetrization.txt", "\n".join(lines))

    # Shape: the fold's own level loses most of its misses.
    assert reductions["128x128 (paper size)"][0] > 0.5   # L1 at paper size
    assert reductions["512x512 (L2-scale)"][1] > 0.5     # L2 at the L2 scale
