"""Ablation — sampling-period distribution: fixed vs uniform vs geometric.

The paper randomizes the next sampling period "based on given probability
distribution" (§4) but does not quantify why.  This bench demonstrates the
aliasing hazard the randomization guards against.

The workload alternates two miss populations every iteration: 16 conflict
misses on one victim set, then 16 streaming (balanced) misses — a strictly
periodic miss pattern of period 32.  A *fixed* sampling period of 32
phase-locks onto one population and never sees the other: depending on the
initial phase it reports cf ~ 1.0 or ~ 0.0 against a ground truth of ~0.4.
Jittered and geometric periods decorrelate from the pattern and land close
to the truth.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.contribution import contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.pmu.periods import FixedPeriod, GeometricPeriod, UniformJitterPeriod
from repro.pmu.sampler import AddressSampler
from repro.reporting.tables import Table
from repro.trace.record import MemoryAccess

from benchmarks.conftest import emit

#: Misses per iteration of the periodic pattern (16 conflict + 16 stream).
PATTERN_PERIOD = 32

ITERATIONS = 3000


def _periodic_trace(geometry):
    cursor = 0x5000_0000
    for _iteration in range(ITERATIONS):
        # Population A: 12 lines cycled through one set -> 16 conflict misses.
        for i in range(16):
            yield MemoryAccess(ip=0x400100, address=(i % 12) * geometry.mapping_period)
        # Population B: a fresh line each access -> 16 balanced cold misses.
        for _i in range(16):
            yield MemoryAccess(ip=0x400104, address=cursor)
            cursor += geometry.line_size


def _ground_truth_cf(geometry):
    cache = SetAssociativeCache(geometry)
    sets = []
    for access in _periodic_trace(geometry):
        if cache.access(access.address, access.ip).miss:
            sets.append(geometry.set_index(access.address))
    return contribution_factor(RcdAnalysis.from_set_sequence(sets, geometry.num_sets))


def _sampled_cf(geometry, period, seed=0):
    sampler = AddressSampler(geometry, period=period, seed=seed)
    result = sampler.run(_periodic_trace(geometry))
    analysis = RcdAnalysis.from_addresses(
        (sample.address for sample in result.samples), geometry
    )
    return contribution_factor(analysis), result.sample_count


def _run():
    geometry = CacheGeometry()
    truth = _ground_truth_cf(geometry)
    rows = []
    for name, period in (
        ("fixed", FixedPeriod(PATTERN_PERIOD)),
        ("uniform-jitter", UniformJitterPeriod(PATTERN_PERIOD)),
        ("geometric", GeometricPeriod(PATTERN_PERIOD)),
    ):
        cf, samples = _sampled_cf(geometry, period)
        rows.append((name, cf, samples, abs(cf - truth)))
    return truth, rows


def test_ablation_period_distribution(benchmark, result_dir):
    truth, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title=(
            "Ablation - period distribution vs aliasing "
            f"(periodic miss pattern, period {PATTERN_PERIOD})"
        ),
        headers=["distribution", "cf estimate", "samples", "|error|"],
    )
    for name, cf, samples, error in rows:
        table.add_row(name, f"{cf:.3f}", samples, f"{error:.3f}")
    emit(
        result_dir,
        "ablation_period_distribution.txt",
        table.render() + f"\nground-truth cf: {truth:.3f}",
    )

    errors = {name: error for name, _, _, error in rows}
    # The fixed period phase-locks onto one miss population and misestimates
    # cf badly; the randomized periods track ground truth.
    assert errors["fixed"] > 0.3
    assert errors["uniform-jitter"] < 0.1
    assert errors["geometric"] < 0.1
