"""Ablation — how fast does the sampled-RCD approximation degrade?

The paper argues (§3.3) that RCD derived from address sampling "holds the
property of original RCD".  This bench quantifies that claim: for one
conflicting and one balanced workload it measures the absolute error of the
sampled contribution factor against the exact (full-simulation) value as
the sampling period grows, and checks the error is driven by sample count
(decays toward fine periods), while classification stays correct deep into
coarse periods.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.contribution import contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.pmu.periods import UniformJitterPeriod
from repro.pmu.sampler import AddressSampler
from repro.reporting.tables import Table
from repro.workloads.adi import AdiWorkload
from repro.workloads.rodinia import make_rodinia_workload

from benchmarks.conftest import emit

PERIODS = [5, 17, 61, 211, 797]


def _exact_cf(factory, geometry):
    cache = SetAssociativeCache(geometry)
    sets = []
    for access in factory().trace():
        if cache.access(access.address, access.ip).miss:
            sets.append(geometry.set_index(access.address))
    return contribution_factor(RcdAnalysis.from_set_sequence(sets, geometry.num_sets))


def _sampled_cf(factory, geometry, period, seed=0):
    sampler = AddressSampler(geometry, period=UniformJitterPeriod(period), seed=seed)
    result = sampler.run(factory().trace())
    analysis = RcdAnalysis.from_addresses(
        (sample.address for sample in result.samples), geometry
    )
    return contribution_factor(analysis), result.sample_count


def _run():
    geometry = CacheGeometry()
    subjects = {
        "adi (conflict)": lambda: AdiWorkload.original(n=128),
        "hotspot (clean)": lambda: make_rodinia_workload("hotspot"),
    }
    rows = []
    for name, factory in subjects.items():
        exact = _exact_cf(factory, geometry)
        for period in PERIODS:
            cf, samples = _sampled_cf(factory, geometry, period)
            rows.append((name, period, exact, cf, samples, abs(cf - exact)))
    return rows


def test_ablation_rcd_approximation_error(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Ablation - sampled cf error vs sampling period",
        headers=["workload", "period", "exact cf", "sampled cf", "samples", "|error|"],
    )
    for name, period, exact, cf, samples, error in rows:
        table.add_row(name, period, f"{exact:.3f}", f"{cf:.3f}", samples, f"{error:.3f}")
    emit(result_dir, "ablation_rcd_approximation.txt", table.render())

    # Fine sampling approximates the exact cf closely for both workloads.
    fine = [row for row in rows if row[1] == PERIODS[0]]
    for name, _period, _exact, _cf, _samples, error in fine:
        assert error < 0.1, f"{name}: error {error:.3f} at period {PERIODS[0]}"
    # Classification survives every period: the conflict workload's sampled
    # cf stays above the clean workload's at equal periods.
    by_period = {}
    for name, period, _exact, cf, _samples, _error in rows:
        by_period.setdefault(period, {})[name] = cf
    for period, values in by_period.items():
        if min(v for v in values.values()) == 0.0 and len(values) < 2:
            continue
        assert values["adi (conflict)"] > values["hotspot (clean)"], period
