"""Figure 7 — CDF of RCD samples across 18 Rodinia applications.

Paper: Needleman-Wunsch is the outlier — RCDs below 8 account for 88% of
its L1 cache misses — while the other applications' hot loops see only
10-20% of misses below RCD 8.  This bench profiles all 18 suite members
through the PEBS-like sampler, computes each hot loop's RCD CDF, and checks
the separation.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.attribution import attribute_code
from repro.core.rcd import RcdAnalysis
from repro.pmu.periods import FixedPeriod
from repro.pmu.sampler import AddressSampler
from repro.program.symbols import Symbolizer
from repro.reporting.files import write_cdf_series
from repro.reporting.tables import Table
from repro.workloads.rodinia import RODINIA_APPS, make_rodinia_workload

from benchmarks.conftest import emit

#: Sampling period for the suite sweep: short enough that even the smaller
#: generators deliver a few hundred samples.
SAMPLE_PERIOD = 11

#: Minimum samples for a loop to count as the app's hot loop.
MIN_SAMPLES = 40


def _hot_loop_cdf(app: str, geometry: CacheGeometry):
    """Profile one app; return (loop name, samples, P(RCD<8), cdf series)."""
    workload = make_rodinia_workload(app)
    sampler = AddressSampler(geometry, period=FixedPeriod(SAMPLE_PERIOD))
    result = sampler.run(workload.trace())
    symbolizer = Symbolizer(workload.image)
    code = attribute_code(result.samples, symbolizer)
    for group in code.loops:  # hottest first
        if group.count >= MIN_SAMPLES:
            analysis = RcdAnalysis.from_addresses(
                (sample.address for sample in group.samples), geometry
            )
            if analysis.observation_count == 0:
                continue
            cdf = analysis.cdf()
            return group.loop_name, group.count, cdf.probability_at(7), cdf.series()
    return None, 0, float("nan"), []


def _run():
    geometry = CacheGeometry()
    rows = {}
    for app in RODINIA_APPS:
        rows[app] = _hot_loop_cdf(app, geometry)
    return rows


def test_fig7_rodinia_rcd_cdfs(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Figure 7 - L1 miss contribution of short RCD (<8) per Rodinia app",
        headers=["app", "hot loop", "samples", "P(RCD<8)"],
    )
    shares = {}
    for app, (loop_name, count, share, series) in rows.items():
        if loop_name is None:
            table.add_row(app, "(too few L1 misses)", count, "-")
            continue
        shares[app] = share
        table.add_row(app, loop_name, count, f"{share:.2f}")
        write_cdf_series(
            result_dir / f"fig7_cdf_{app.replace('+', 'plus')}.txt",
            series,
            label=f"{app} {loop_name}",
        )
    emit(
        result_dir,
        "fig7_rodinia.txt",
        table.render()
        + "\npaper: NW 88% below RCD 8; other apps 10-20% below RCD 8",
    )

    # Shape assertions: NW is the outlier, everything else is low.
    assert shares["nw"] > 0.5, f"NW short-RCD share only {shares['nw']:.2f}"
    others = [share for app, share in shares.items() if app != "nw"]
    assert others, "no other app produced enough samples"
    assert all(share < 0.35 for share in others), sorted(
        (share, app) for app, share in shares.items() if app != "nw"
    )[-3:]
    # Separation: NW's share at least doubles the worst non-NW app.
    assert shares["nw"] > 2 * max(others)
