"""End-to-end pipeline — the paper's full workflow, once through.

The complete CCProf story as one experiment:

1. train the logistic-regression classifier on the 16 labelled loops,
   using *sampled* contribution factors at the paper's high-accuracy
   period (§5.2);
2. profile all six case studies, original and optimized, with that
   trained classifier installed;
3. score the 12 verdicts against the known ground truth (original =
   conflict, optimized = clean).

A perfect 12/12 means the trained model transfers from the synthetic
training population to the real kernels — the transfer the paper's
evaluation implicitly relies on.

The sampling period is finer than the paper's production 1212 for two of
the paper's own reasons: the scaled-down kernels yield far fewer miss
events than full-size runs (NW), and HimenoBMT's conflict period is tiny —
the case the paper itself samples at 27x overhead (§6.6).  Training and
profiling share the period so the cf feature distribution matches.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.classifier import ConflictClassifier, TrainingExample
from repro.core.contribution import contribution_factor
from repro.core.profiler import CCProf
from repro.core.rcd import RcdAnalysis
from repro.pmu.periods import UniformJitterPeriod
from repro.pmu.sampler import AddressSampler
from repro.reporting.tables import Table
from repro.workloads.adi import AdiWorkload
from repro.workloads.fft import Fft2dWorkload
from repro.workloads.himeno import HimenoWorkload
from repro.workloads.kripke import KripkeWorkload
from repro.workloads.nw import NeedlemanWunschWorkload
from repro.workloads.tinydnn import TinyDnnFcWorkload
from repro.workloads.training import training_loops

from benchmarks.conftest import emit

TRAIN_PERIOD = 17

CASE_STUDIES = [
    ("NW", lambda: NeedlemanWunschWorkload.original(n=256),
     lambda: NeedlemanWunschWorkload.padded(n=256)),
    ("MKL FFT", lambda: Fft2dWorkload.original(n=128),
     lambda: Fft2dWorkload.padded(n=128)),
    ("ADI", lambda: AdiWorkload.original(n=256),
     lambda: AdiWorkload.padded(n=256)),
    ("Tiny_DNN", lambda: TinyDnnFcWorkload.original(),
     lambda: TinyDnnFcWorkload.padded()),
    ("Kripke", lambda: KripkeWorkload.original(),
     lambda: KripkeWorkload.optimized()),
    ("HimenoBMT", lambda: HimenoWorkload.original(),
     lambda: HimenoWorkload.padded()),
]


def _train_classifier(geometry) -> ConflictClassifier:
    examples = []
    for index, loop in enumerate(training_loops(geometry, repeats=120)):
        sampler = AddressSampler(
            geometry, period=UniformJitterPeriod(TRAIN_PERIOD), seed=index
        )
        result = sampler.run(loop.factory().trace())
        analysis = RcdAnalysis.from_addresses(
            (sample.address for sample in result.samples), geometry
        )
        examples.append(
            TrainingExample(
                contribution=contribution_factor(analysis),
                has_conflict=loop.has_conflict,
                name=loop.name,
            )
        )
    return ConflictClassifier().fit(examples)


def _run():
    geometry = CacheGeometry()
    classifier = _train_classifier(geometry)
    profiler = CCProf(
        geometry=geometry,
        period=UniformJitterPeriod(TRAIN_PERIOD),
        seed=2,
        classifier=classifier,
    )
    rows = []
    for name, original_factory, optimized_factory in CASE_STUDIES:
        for variant, factory, expected in (
            ("original", original_factory, True),
            ("optimized", optimized_factory, False),
        ):
            report = profiler.run(factory())
            verdict = report.has_conflicts
            probability = max(
                (loop.probability or 0.0 for loop in report.loops), default=0.0
            )
            rows.append((name, variant, expected, verdict, probability))
    return classifier.decision_boundary(), rows


def test_end_to_end_trained_pipeline(benchmark, result_dir):
    boundary, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="End-to-end pipeline - trained classifier on all 12 variants",
        headers=["application", "variant", "expected", "verdict", "max P(conflict)"],
    )
    correct = 0
    for name, variant, expected, verdict, probability in rows:
        correct += int(expected == verdict)
        table.add_row(
            name,
            variant,
            "conflict" if expected else "clean",
            "conflict" if verdict else "clean",
            f"{probability:.2f}",
        )
    summary = (
        f"decision boundary cf = {boundary:.3f}; verdicts correct: "
        f"{correct}/12"
    )
    emit(result_dir, "end_to_end_pipeline.txt", table.render() + "\n" + summary)

    # The trained model transfers: every original flags, every optimized
    # variant is cleared.
    assert correct == 12, summary
