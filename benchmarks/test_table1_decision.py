"""Table 1 — the (RCD, contribution) implication matrix.

Paper: low RCD + low contribution = insignificant impact; low RCD + high
contribution = strong indication of imbalanced cache utilization; high RCD
= no indication.  The matrix is per cache set: a set can exhibit short
re-conflict distances yet matter little because it carries few of the
context's misses.  This bench regenerates the matrix from three archetypal
measured patterns, evaluating the worst (shortest-RCD) set of each.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.classifier import Implication, implication_for
from repro.core.contribution import contribution_factors_by_set
from repro.core.rcd import RcdAnalysis
from repro.reporting.tables import Table

from benchmarks.conftest import emit


def _worst_set_metrics(sequence, geometry):
    """Mean RCD and Equation-1 contribution of the shortest-RCD set."""
    analysis = RcdAnalysis.from_set_sequence(sequence, geometry.num_sets)
    histograms = analysis.per_set_histograms()
    worst_set = min(histograms, key=lambda s: histograms[s].mean())
    mean_rcd = histograms[worst_set].mean()
    cf_by_set = contribution_factors_by_set(analysis)
    return worst_set, mean_rcd, cf_by_set.get(worst_set, 0.0)


def _run():
    geometry = CacheGeometry()
    n = geometry.num_sets
    balanced_cycle = list(range(n))
    patterns = {
        # Hammering one set: its RCD is 0 and it owns all the misses.
        "victim-hammer": [5] * 2000,
        # Set 5 occasionally doubles up inside balanced traffic: its RCD is
        # short but it contributes a sliver of the context's misses.
        "rare-repeat": sum(([5, 5] + balanced_cycle for _ in range(30)), []),
        # Balanced rotation: every set's RCD equals N-1.
        "balanced": balanced_cycle * 30,
    }
    rows = []
    for name, sequence in patterns.items():
        worst_set, mean_rcd, cf = _worst_set_metrics(sequence, geometry)
        rcd_is_low = mean_rcd < geometry.num_sets / 2
        contribution_is_high = cf > 0.25
        rows.append(
            (
                name,
                worst_set,
                mean_rcd,
                cf,
                implication_for(rcd_is_low, contribution_is_high),
            )
        )
    return rows


def test_table1_implication_matrix(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Table 1 - per-set RCD x contribution implications",
        headers=["pattern", "worst set", "mean RCD", "cf", "implication"],
    )
    verdicts = {}
    for name, worst_set, mean_rcd, cf, implication in rows:
        verdicts[name] = implication
        table.add_row(name, worst_set, f"{mean_rcd:.1f}", f"{cf:.4f}", implication.name)
    emit(result_dir, "table1_decision.txt", table.render())

    assert verdicts["victim-hammer"] is Implication.STRONG_CONFLICT
    assert verdicts["rare-repeat"] is Implication.INSIGNIFICANT
    assert verdicts["balanced"] is Implication.NO_CONFLICT
