"""Ablation — would hashed set indexing have saved these kernels?

The software fixes the paper applies (padding, loop reordering) have a
hardware counterpart: hash high address bits into the set index (as Intel
LLC slice selection does) so power-of-two strides stop folding.  This
bench replays the conflicting case-study kernels on an XOR-folded L1 and
measures how much of the padding benefit the hardware scheme captures —
and confirms the RCD *detector* still reads correctly through a hashed
index (balanced stays balanced, conflicts that survive still show).
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.hashing import XorFoldedGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.reporting.tables import Table, format_percent
from repro.workloads.adi import AdiWorkload
from repro.workloads.fft import Fft2dWorkload
from repro.workloads.symmetrization import SymmetrizationWorkload
from repro.workloads.tinydnn import TinyDnnFcWorkload

from benchmarks.conftest import emit

SUBJECTS = [
    ("symmetrization", lambda: SymmetrizationWorkload.original(n=128, sweeps=2),
     lambda: SymmetrizationWorkload.padded(n=128, sweeps=2)),
    ("adi", lambda: AdiWorkload.original(n=128),
     lambda: AdiWorkload.padded(n=128)),
    ("fft", lambda: Fft2dWorkload.original(n=64),
     lambda: Fft2dWorkload.padded(n=64)),
    ("tiny-dnn", lambda: TinyDnnFcWorkload.original(in_size=256, out_size=128),
     lambda: TinyDnnFcWorkload.padded(in_size=256, out_size=128)),
]


def _misses(factory, geometry):
    cache = SetAssociativeCache(geometry)
    return cache.run_trace(factory().trace()).misses


def _run():
    plain = CacheGeometry()
    hashed = XorFoldedGeometry(fold_levels=1)
    rows = []
    for name, original_factory, padded_factory in SUBJECTS:
        plain_misses = _misses(original_factory, plain)
        hashed_misses = _misses(original_factory, hashed)
        padded_misses = _misses(padded_factory, plain)
        rows.append((name, plain_misses, hashed_misses, padded_misses))
    return rows


def test_ablation_index_hashing(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Ablation - L1 misses: plain index vs XOR-hashed index vs software pad",
        headers=["kernel", "plain", "hashed index", "padded (software)",
                 "hashing captures"],
    )
    captures = {}
    for name, plain, hashed, padded in rows:
        software_gain = plain - padded
        hardware_gain = plain - hashed
        share = hardware_gain / software_gain if software_gain > 0 else 0.0
        captures[name] = share
        table.add_row(name, plain, hashed, padded, format_percent(share))
    emit(
        result_dir,
        "ablation_index_hashing.txt",
        table.render()
        + "\n'hashing captures' = hashed-index miss reduction as a share of "
        "the software pad's reduction",
    )

    # The hardware scheme recovers a large share of the padding win on
    # every power-of-two-fold kernel.
    for name, share in captures.items():
        assert share > 0.5, f"{name}: hashing captured only {share:.1%}"
