"""Table 4 — per-loop L1 miss contribution and cache-set usage in
Needleman-Wunsch.

Paper: 11 loops of needle.cpp; the tile-copy loops (:128, :189) each
contribute ~29.5% of L1 misses across all 64 sets; loops :138/:199 use only
a *subset* of sets (45, 41) with ~10% contribution each; the compute and
traceback loops are trivial.  The copy loops' short RCDs (88% below 8) mark
them as the conflict sites.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.attribution import attribute_code
from repro.core.rcd import RcdAnalysis
from repro.pmu.periods import FixedPeriod
from repro.pmu.sampler import AddressSampler
from repro.program.symbols import Symbolizer
from repro.reporting.tables import Table
from repro.workloads.nw import NeedlemanWunschWorkload

from benchmarks.conftest import emit

TABLE4_LINES = (289, 189, 128, 138, 199, 320, 147, 208, 220, 159, 273)


def _run():
    geometry = CacheGeometry()
    workload = NeedlemanWunschWorkload.original(n=256)
    sampler = AddressSampler(geometry, period=FixedPeriod(7))
    result = sampler.run(workload.trace())
    code = attribute_code(result.samples, Symbolizer(workload.image))
    rows = {}
    for group in code.loops:
        sets = {geometry.set_index(sample.address) for sample in group.samples}
        analysis = RcdAnalysis.from_addresses(
            (sample.address for sample in group.samples), geometry
        )
        short_share = (
            analysis.cdf().probability_at(7) if analysis.observation_count else 0.0
        )
        rows[group.loop_name] = {
            "contribution": group.share,
            "sets": len(sets),
            "short_rcd": short_share,
            "samples": group.count,
        }
    return rows


def test_table4_nw_loop_breakdown(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Table 4 - NW per-loop L1 miss contribution and set usage",
        headers=["loop", "contribution", "# sets", "P(RCD<8)", "samples"],
    )
    ordered = sorted(rows.items(), key=lambda kv: kv[1]["contribution"], reverse=True)
    for loop_name, data in ordered:
        table.add_row(
            loop_name,
            f"{data['contribution']:.2%}",
            data["sets"],
            f"{data['short_rcd']:.2f}",
            data["samples"],
        )
    notes = (
        "paper: needle.cpp:128/:189 ~29.5% each over 64 sets; :138/:199 ~10% "
        "over 45/41 sets; compute/traceback loops <1%"
    )
    emit(result_dir, "table4_nw_loops.txt", table.render() + "\n" + notes)

    # Shape assertions against the paper's ordering.  One documented
    # divergence (see EXPERIMENTS.md): the paper's init loop :289 carries
    # 19.2% of L1 load misses on the full 2048-sequence input; our scaled
    # synthetic init stays cache-resident, so its share is small here.
    def contribution(line):
        return rows.get(f"needle.cpp:{line}", {"contribution": 0.0})["contribution"]

    # The four tile copy loops dominate the load-miss profile...
    tile_copies = sum(contribution(line) for line in (128, 138, 189, 199))
    assert tile_copies > 0.8
    # ...while the compute loops' locals stay cached and the traceback is
    # trivial, exactly as in Table 4's tail.
    assert contribution(147) + contribution(208) < 0.05
    assert contribution(320) < 0.05
    # The copy loops exhibit the conflict signature (short-RCD mass).
    assert rows["needle.cpp:189"]["short_rcd"] > 0.5
    assert rows["needle.cpp:128"]["short_rcd"] > 0.3
    # Whatever the init loop contributes, it shows no conflict signature.
    init = rows.get("needle.cpp:289")
    assert init is None or init["short_rcd"] < 0.3
