"""Table 3 — speedup and L1/L2/LLC miss reduction after optimization, on
Broadwell and Skylake.

Paper (selected rows): NW 3.03x (Broadwell) / 1.55x (Skylake) with LLC
reductions of 52.7% / 20.9%; ADI 1.26x / 1.70x; Kripke 94.6x / 11.1x (loop
only); HimenoBMT 1.12x / 1.14x.  Wall-clock speedups come from the
machines, which we cannot measure — speedups here are *estimated* by the
analytical cycle model over the simulated hierarchies (DESIGN.md §2), so
the assertions target direction and ranking, not absolute factors.
"""

from __future__ import annotations

from repro.cache.hierarchy import miss_reduction
from repro.perfmodel.machine import BROADWELL, SKYLAKE
from repro.perfmodel.timing import speedup
from repro.reporting.tables import Table, format_percent, format_speedup
from repro.workloads.adi import AdiWorkload
from repro.workloads.fft import Fft2dWorkload
from repro.workloads.himeno import HimenoWorkload
from repro.workloads.kripke import KripkeWorkload
from repro.workloads.nw import NeedlemanWunschWorkload
from repro.workloads.tinydnn import TinyDnnFcWorkload

from benchmarks.conftest import emit

CASE_STUDIES = [
    ("NW", lambda: NeedlemanWunschWorkload.original(n=256),
     lambda: NeedlemanWunschWorkload.padded(n=256)),
    ("MKL FFT", lambda: Fft2dWorkload.original(n=128),
     lambda: Fft2dWorkload.padded(n=128)),
    ("ADI", lambda: AdiWorkload.original(n=256),
     lambda: AdiWorkload.padded(n=256)),
    ("Tiny_DNN", lambda: TinyDnnFcWorkload.original(),
     lambda: TinyDnnFcWorkload.padded()),
    ("Kripke", lambda: KripkeWorkload.original(sweeps=4),
     lambda: KripkeWorkload.optimized(sweeps=4)),
    ("HimenoBMT", lambda: HimenoWorkload.original(),
     lambda: HimenoWorkload.padded()),
]


def _run():
    rows = []
    for name, original_factory, optimized_factory in CASE_STUDIES:
        per_machine = {}
        for machine in (BROADWELL, SKYLAKE):
            before = original_factory().hierarchy_result(machine.hierarchy())
            after = optimized_factory().hierarchy_result(machine.hierarchy())
            per_machine[machine.name] = {
                "speedup": speedup(before, after, machine),
                "reductions": miss_reduction(before, after),
            }
        rows.append((name, per_machine))
    return rows


def test_table3_speedup_and_miss_reduction(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Table 3 - modelled speedup and miss reduction after optimization",
        headers=["application", "machine", "speedup", "L1 red.", "L2 red.", "LLC red."],
    )
    speedups = {}
    for name, per_machine in rows:
        for machine_name, data in per_machine.items():
            l1_red, l2_red, llc_red = data["reductions"]
            table.add_row(
                name,
                machine_name.split()[0],
                format_speedup(data["speedup"]),
                format_percent(l1_red),
                format_percent(l2_red),
                format_percent(llc_red),
            )
            speedups.setdefault(name, {})[machine_name.split()[0]] = data["speedup"]
    notes = (
        "paper (Broadwell/Skylake): NW 3.03x/1.55x, MKL FFT 1.13x/1.03x, "
        "ADI 1.26x/1.70x, Tiny_DNN 1.09x/1.24x, Kripke 94.6x/11.1x, "
        "HimenoBMT 1.12x/1.14x"
    )
    emit(result_dir, "table3_speedup.txt", table.render() + "\n" + notes)

    # Shape 1: every optimization speeds up on both machines.
    for name, by_machine in speedups.items():
        for machine_name, value in by_machine.items():
            assert value > 1.0, f"{name} on {machine_name}: {value:.2f}x"
    # Shape 2: the two kernels where *every* reference conflicts (Kripke's
    # column-order psi walk, HimenoBMT's aliased planes) top the table, as
    # they do in the paper (Kripke 94.6x; the additive-AMAT model cannot
    # reproduce that absolute factor — see EXPERIMENTS.md — but the ranking
    # of conflict-dominated kernels above the partially-conflicted ones
    # holds).
    for machine_name in ("Broadwell", "Skylake"):
        total_conflict = [
            speedups["Kripke"][machine_name],
            speedups["HimenoBMT"][machine_name],
        ]
        others = [
            by_machine[machine_name]
            for name, by_machine in speedups.items()
            if name not in ("Kripke", "HimenoBMT")
        ]
        assert min(total_conflict) > max(others)
