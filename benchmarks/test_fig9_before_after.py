"""Figure 9 — RCD CDFs of the six case studies, before and after optimization.

Paper §6: every original implementation shows high L1-miss contribution
under short RCD; after padding (or, for Kripke, loop reordering) short RCDs
account for a small share — CCProf re-classifies the optimized code as
conflict-free.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.attribution import attribute_code
from repro.core.rcd import RcdAnalysis
from repro.pmu.periods import FixedPeriod
from repro.pmu.sampler import AddressSampler
from repro.program.symbols import Symbolizer
from repro.reporting.files import write_cdf_series
from repro.reporting.tables import Table
from repro.workloads.adi import AdiWorkload
from repro.workloads.fft import Fft2dWorkload
from repro.workloads.himeno import HimenoWorkload
from repro.workloads.kripke import KripkeWorkload
from repro.workloads.nw import NeedlemanWunschWorkload
from repro.workloads.tinydnn import TinyDnnFcWorkload

from benchmarks.conftest import emit

SAMPLE_PERIOD = 13

#: (paper name, original factory, optimized factory) — §6's six studies.
CASE_STUDIES = [
    ("NW", lambda: NeedlemanWunschWorkload.original(n=256),
     lambda: NeedlemanWunschWorkload.padded(n=256)),
    ("MKL FFT", lambda: Fft2dWorkload.original(n=128),
     lambda: Fft2dWorkload.padded(n=128)),
    ("ADI", lambda: AdiWorkload.original(n=256),
     lambda: AdiWorkload.padded(n=256)),
    ("Tiny_DNN", lambda: TinyDnnFcWorkload.original(),
     lambda: TinyDnnFcWorkload.padded()),
    ("Kripke", lambda: KripkeWorkload.original(),
     lambda: KripkeWorkload.optimized()),
    ("HimenoBMT", lambda: HimenoWorkload.original(),
     lambda: HimenoWorkload.padded()),
]


def _hot_loop_short_share(workload, geometry):
    """(hot loop name, P(RCD<8) of its samples, CDF series)."""
    sampler = AddressSampler(geometry, period=FixedPeriod(SAMPLE_PERIOD))
    result = sampler.run(workload.trace())
    code = attribute_code(result.samples, Symbolizer(workload.image))
    for group in code.loops:
        if group.count < 30:
            continue
        analysis = RcdAnalysis.from_addresses(
            (s.address for s in group.samples), geometry
        )
        if analysis.observation_count:
            cdf = analysis.cdf()
            return group.loop_name, cdf.probability_at(7), cdf.series()
    return "(none)", 0.0, []


def _run():
    geometry = CacheGeometry()
    rows = []
    for name, original_factory, optimized_factory in CASE_STUDIES:
        original = _hot_loop_short_share(original_factory(), geometry)
        optimized = _hot_loop_short_share(optimized_factory(), geometry)
        rows.append((name, original, optimized))
    return rows


def test_fig9_optimization_removes_short_rcds(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Figure 9 - P(RCD<8) of the hot loop, original vs optimized",
        headers=["application", "hot loop", "original", "optimized"],
    )
    shares = {}
    for name, original, optimized in rows:
        loop_name, before, before_series = original
        _, after, after_series = optimized
        shares[name] = (before, after)
        table.add_row(name, loop_name, f"{before:.2f}", f"{after:.2f}")
        stem = name.lower().replace(" ", "_")
        if before_series:
            write_cdf_series(
                result_dir / f"fig9_{stem}_original.txt", before_series, label=name
            )
        if after_series:
            write_cdf_series(
                result_dir / f"fig9_{stem}_optimized.txt", after_series, label=name
            )
    emit(
        result_dir,
        "fig9_before_after.txt",
        table.render()
        + "\npaper: all originals high under short RCD; optimized variants low "
        "(e.g. NW -90%, Tiny-DNN -73%, Kripke 71.9% -> 10%)",
    )

    # Shape: every case study's short-RCD share drops after optimization.
    for name, (before, after) in shares.items():
        assert after < before, f"{name}: {before:.2f} -> {after:.2f} did not improve"
    # The flagship cases drop by a large factor.
    for name in ("ADI", "Kripke", "MKL FFT"):
        before, after = shares[name]
        assert before > 0.5 and after < 0.5 * before, f"{name}: {before} -> {after}"
