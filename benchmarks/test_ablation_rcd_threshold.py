"""Ablation — sensitivity of the classifier to the RCD threshold T.

The paper fixes T = 8 (num_sets / 8) without exploring alternatives.  This
bench sweeps T over 2..32 and scores the 16-training-loop classifier at
each value: the paper's choice should sit on the wide plateau of
equally-good thresholds, with degradation at the extremes (T=1 starves the
numerator; T -> N makes clean loops look conflicting).
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.contribution import contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.pmu.periods import UniformJitterPeriod
from repro.pmu.sampler import AddressSampler
from repro.reporting.tables import Table
from repro.stats.validation import cross_validate_f1
from repro.workloads.training import training_loops

from benchmarks.conftest import emit

THRESHOLDS = [1, 2, 4, 8, 16, 32, 56]
SAMPLE_PERIOD = 171


def _run():
    geometry = CacheGeometry()
    loops = training_loops(geometry, repeats=120)
    labels = [int(loop.has_conflict) for loop in loops]
    analyses = []
    for index, loop in enumerate(loops):
        sampler = AddressSampler(
            geometry, period=UniformJitterPeriod(SAMPLE_PERIOD), seed=index
        )
        result = sampler.run(loop.factory().trace())
        analyses.append(
            RcdAnalysis.from_addresses(
                (sample.address for sample in result.samples), geometry
            )
        )
    scores = []
    for threshold in THRESHOLDS:
        features = [contribution_factor(a, threshold) for a in analyses]
        scores.append((threshold, cross_validate_f1(features, labels, folds=8, seed=0)))
    return scores


def test_ablation_rcd_threshold(benchmark, result_dir):
    scores = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Ablation - classifier F1 vs RCD threshold T (sampling period 171)",
        headers=["T", "F1"],
    )
    for threshold, f1 in scores:
        table.add_row(threshold, f"{f1:.3f}")
    emit(result_dir, "ablation_rcd_threshold.txt", table.render())

    by_threshold = dict(scores)
    # The paper's T=8 achieves (near-)top accuracy...
    assert by_threshold[8] >= max(by_threshold.values()) - 0.05
    # ...and is not a knife-edge: neighbours perform comparably.
    assert by_threshold[4] >= by_threshold[8] - 0.15
    assert by_threshold[16] >= by_threshold[8] - 0.15
