"""Table 2 — per-application profile: target-loop contribution, CCProf
overhead vs simulation overhead, and active inner-loop counts.

Paper: the six case studies' target loops contribute 5.1-99% of L1 misses;
CCProf's whole-application overhead is 1.1x-27x (median 1.37x) while
selective loop simulation costs 15.8x-4664x (median 264x) — the headline
"at least an order of magnitude lower than simulators".

Two overhead views are produced:

- *measured on this substrate*: wall-clock of (trace generation + PEBS-like
  sampling) and of (trace generation + full three-C simulation), each
  normalized to bare trace generation — our sampling-vs-simulation ratio;
- *paper-calibrated model*: the Figure 8 overhead model evaluated at the
  run's own sample density, giving the hardware-scale numbers.
"""

from __future__ import annotations

import time

from repro.cache.classify import ThreeCClassifier
from repro.cache.geometry import CacheGeometry
from repro.core.attribution import attribute_code
from repro.pmu.overhead import OverheadModel
from repro.pmu.periods import UniformJitterPeriod
from repro.pmu.sampler import AddressSampler
from repro.program.symbols import Symbolizer
from repro.reporting.tables import Table
from repro.workloads.adi import AdiWorkload
from repro.workloads.fft import Fft2dWorkload
from repro.workloads.himeno import HimenoWorkload
from repro.workloads.kripke import KripkeWorkload
from repro.workloads.nw import NeedlemanWunschWorkload
from repro.workloads.tinydnn import TinyDnnFcWorkload

from benchmarks.conftest import emit

CASE_STUDIES = [
    ("NW", lambda: NeedlemanWunschWorkload.original(n=256)),
    ("MKL FFT", lambda: Fft2dWorkload.original(n=128)),
    ("ADI", lambda: AdiWorkload.original(n=256)),
    ("Tiny_DNN", lambda: TinyDnnFcWorkload.original()),
    ("Kripke", lambda: KripkeWorkload.original()),
    ("HimenoBMT", lambda: HimenoWorkload.original()),
]

SAMPLE_PERIOD = 211


def _wall(fn, repetitions: int = 2) -> float:
    """Best-of-N wall time: the standard defense against scheduler noise."""
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _profile_one(name, factory, geometry):
    # Baseline: the cost of producing the address stream at all.
    baseline = _wall(lambda: sum(1 for _ in factory().trace()))

    # CCProf: stream + sampling (cache state + countdown handler).
    sampler = AddressSampler(geometry, period=UniformJitterPeriod(SAMPLE_PERIOD))
    holder = {}
    ccprof_time = _wall(
        lambda: holder.__setitem__("result", sampler.run(factory().trace()))
    )
    result = holder["result"]

    # Simulation: stream + full three-C classification (the ground truth a
    # simulator-based study needs).
    simulation_time = _wall(
        lambda: ThreeCClassifier(geometry).run_trace(factory().trace())
    )

    workload = factory()
    code = attribute_code(result.samples, Symbolizer(workload.image))
    hot = code.loops[0] if code.loops else None
    inner_loops = sum(
        1
        for function in workload.image.functions
        for loop in workload.image.loop_forest(function.name)
        if loop.is_innermost
    )
    model = OverheadModel.calibrated()
    modelled = model.overhead_for_run(
        result.total_events, result.sample_count, result.total_accesses
    )
    return {
        "app": name,
        "loop": hot.loop_name if hot else "-",
        "contribution": hot.share if hot else 0.0,
        "ccprof_measured": ccprof_time / baseline,
        "simulation_measured": simulation_time / baseline,
        "ccprof_modelled": modelled,
        "inner_loops": inner_loops,
    }


def _run():
    geometry = CacheGeometry()
    return [_profile_one(name, factory, geometry) for name, factory in CASE_STUDIES]


def test_table2_overhead_comparison(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Table 2 - target loops, CCProf vs simulation overhead",
        headers=[
            "application",
            "target loop",
            "loop contrib",
            "CCProf (measured)",
            "simulation (measured)",
            "CCProf (hw model)",
            "# inner loops",
        ],
    )
    for row in rows:
        table.add_row(
            row["app"],
            row["loop"],
            f"{row['contribution']:.1%}",
            f"{row['ccprof_measured']:.2f}x",
            f"{row['simulation_measured']:.2f}x",
            f"{row['ccprof_modelled']:.2f}x",
            row["inner_loops"],
        )
    notes = (
        "paper: CCProf whole-app overhead 1.1x-27x (median 1.37x); "
        "loop simulation 15.8x-4664x (median 264x)"
    )
    emit(result_dir, "table2_overhead.txt", table.render() + "\n" + notes)

    # Shape: full simulation costs more on top of the trace than sampling
    # does (sampling's marginal work is the L1 state plus a rare handler;
    # classification adds a shadow cache and per-access classing).  Judged
    # per app with a noise margin and strictly on the suite median, since
    # the quantities are wall-clock measurements.
    import statistics

    for row in rows:
        assert row["simulation_measured"] > 0.8 * row["ccprof_measured"], row["app"]
    median_simulation = statistics.median(r["simulation_measured"] for r in rows)
    median_ccprof = statistics.median(r["ccprof_measured"] for r in rows)
    assert median_simulation > median_ccprof
    # The hot loop the sampler finds is a real loop with high contribution.
    for row in rows:
        assert row["contribution"] > 0.3
    # NW has by far the most inner loops (11 declared, Table 4).
    nw = next(row for row in rows if row["app"] == "NW")
    assert nw["inner_loops"] >= 10
