"""Shared infrastructure for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md §4 for the index).  Conventions:

- Each experiment runs once inside ``benchmark.pedantic(..., rounds=1)`` so
  ``pytest benchmarks/ --benchmark-only`` both times it and executes it.
- Rendered tables / CDF series are printed and also written under
  ``CCPROF_result/`` in the repository root, mirroring the layout of the
  paper's artifact.
- Assertions check the paper's *shape* (who wins, direction, separation),
  never its absolute testbed numbers.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

#: Repository-root artifact directory (the paper artifact's CCPROF_result).
RESULT_DIR = Path(__file__).resolve().parent.parent / "CCPROF_result"

try:
    _HAVE_PYTEST_BENCHMARK = importlib.util.find_spec("pytest_benchmark") is not None
except ImportError:  # pragma: no cover - exotic import-hook setups
    _HAVE_PYTEST_BENCHMARK = False


class _FallbackBenchmark:
    """Minimal stand-in for pytest-benchmark's ``benchmark`` fixture.

    Executes the target exactly once and returns its value, so every
    experiment in this directory still *runs* (and its shape assertions
    still check) when the plugin is not installed — only the timing
    statistics are lost.
    """

    def __call__(self, target, *args, **kwargs):
        return target(*args, **kwargs)

    def pedantic(self, target, args=(), kwargs=None, **_options):
        return target(*args, **(kwargs or {}))


if not _HAVE_PYTEST_BENCHMARK:

    @pytest.fixture
    def benchmark() -> _FallbackBenchmark:
        """No-op benchmark fixture used when pytest-benchmark is absent."""
        return _FallbackBenchmark()


@pytest.fixture(scope="session")
def result_dir() -> Path:
    """The CCPROF_result output directory (created on first use)."""
    RESULT_DIR.mkdir(exist_ok=True)
    return RESULT_DIR


def emit(result_dir: Path, filename: str, text: str) -> None:
    """Print a result block and persist it under CCPROF_result/."""
    print("\n" + text)
    (result_dir / filename).write_text(text + "\n", encoding="utf-8")
