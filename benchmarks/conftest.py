"""Shared infrastructure for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md §4 for the index).  Conventions:

- Each experiment runs once inside ``benchmark.pedantic(..., rounds=1)`` so
  ``pytest benchmarks/ --benchmark-only`` both times it and executes it.
- Rendered tables / CDF series are printed and also written under
  ``CCPROF_result/`` in the repository root, mirroring the layout of the
  paper's artifact.
- Assertions check the paper's *shape* (who wins, direction, separation),
  never its absolute testbed numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: Repository-root artifact directory (the paper artifact's CCPROF_result).
RESULT_DIR = Path(__file__).resolve().parent.parent / "CCPROF_result"


@pytest.fixture(scope="session")
def result_dir() -> Path:
    """The CCPROF_result output directory (created on first use)."""
    RESULT_DIR.mkdir(exist_ok=True)
    return RESULT_DIR


def emit(result_dir: Path, filename: str, text: str) -> None:
    """Print a result block and persist it under CCPROF_result/."""
    print("\n" + text)
    (result_dir / filename).write_text(text + "\n", encoding="utf-8")
