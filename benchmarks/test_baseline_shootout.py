"""Baseline shoot-out (paper §7.1) — CCProf vs DProf vs MST vs ground truth.

The paper's positioning claims, run head-to-head on two archetypes:

- a *static* conflict (one fixed group of victim sets, the NW/Tiny-DNN
  shape): every detector should catch it;
- a *moving* conflict (the victim set rotates, the ADI/Kripke/Himeno
  shape): DProf's whole-run spatial histogram balances out and misses it
  ("DProf assumes that the workload is uniform throughout the runtime");
  single-entry MST under-classifies when several lines rotate per set;
  CCProf's RCD keeps the temporal ordering and flags both.
"""

from __future__ import annotations

from repro.baselines.dprof import DprofDetector
from repro.baselines.mst import MissClassificationTable
from repro.cache.classify import ThreeCClassifier
from repro.cache.geometry import CacheGeometry
from repro.core.contribution import contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.pmu.periods import FixedPeriod
from repro.pmu.sampler import AddressSampler
from repro.reporting.tables import Table
from repro.trace.record import MemoryAccess

from benchmarks.conftest import emit

IP = 0x400100


def _static_conflict(geometry, repeats=800):
    """Nine lines folded onto one set: the tight rotation where even MST's
    single evicted-tag register works (the evicted line is always the next
    referenced)."""
    for _ in range(repeats):
        for i in range(9):
            yield MemoryAccess(ip=IP, address=i * geometry.mapping_period)


def _moving_conflict(geometry, victims=32, laps=8, rounds=12):
    """Twelve lines folded onto a victim set that rotates over 32 sets.

    The total working set (32 x 12 = 384 lines) fits the cache, so every
    miss is a pure set conflict (three-C confirms), but: the per-set miss
    totals equalize over the run (DProf's spatial histogram balances), and
    the 12-line rotation overwrites MST's single-entry register.  Only the
    temporal RCD view flags it.
    """
    for _round in range(rounds):
        for victim in range(victims):
            for _lap in range(laps):
                for i in range(12):
                    yield MemoryAccess(
                        ip=IP,
                        address=victim * geometry.line_size
                        + i * geometry.mapping_period,
                    )


def _balanced(geometry, repeats=40):
    """Sequential stream: the control that nobody should flag."""
    lines = 4 * geometry.num_sets * geometry.ways
    for _ in range(repeats):
        for i in range(lines):
            yield MemoryAccess(ip=IP, address=i * geometry.line_size)


def _evaluate(name, trace_factory, geometry):
    # Ground truth: three-C classification.
    truth = ThreeCClassifier(geometry)
    truth.run_trace(trace_factory())
    truth_conflict = truth.counts.conflict_fraction() > 0.3

    # CCProf: sampled RCD contribution factor.
    sampler = AddressSampler(geometry, period=FixedPeriod(13))
    result = sampler.run(trace_factory())
    analysis = RcdAnalysis.from_addresses(
        (sample.address for sample in result.samples), geometry
    )
    cf = contribution_factor(analysis)
    ccprof_conflict = cf > 0.25

    # DProf: spatial per-set histogram over the same samples.
    dprof = DprofDetector(geometry).analyze(result.samples)

    # MST: single-entry evicted-tag match.
    mst = MissClassificationTable(geometry, entries=1)
    mst.run_trace(trace_factory())
    mst_conflict = mst.counts.conflict_fraction > 0.3

    return {
        "pattern": name,
        "truth": truth_conflict,
        "ccprof": ccprof_conflict,
        "ccprof_cf": cf,
        "dprof": dprof.has_conflict,
        "dprof_imbalance": dprof.imbalance,
        "mst": mst_conflict,
        "mst_fraction": mst.counts.conflict_fraction,
    }


def _run():
    geometry = CacheGeometry()
    return [
        _evaluate("static-conflict", lambda: _static_conflict(geometry), geometry),
        _evaluate("moving-conflict", lambda: _moving_conflict(geometry), geometry),
        _evaluate("balanced", lambda: _balanced(geometry), geometry),
    ]


def test_baseline_shootout(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Baseline shoot-out - conflict verdicts per detector",
        headers=["pattern", "ground truth", "CCProf (cf)", "DProf (imb)", "MST (frac)"],
    )
    by_pattern = {}
    for row in rows:
        by_pattern[row["pattern"]] = row
        table.add_row(
            row["pattern"],
            "conflict" if row["truth"] else "clean",
            f"{'conflict' if row['ccprof'] else 'clean'} ({row['ccprof_cf']:.2f})",
            f"{'conflict' if row['dprof'] else 'clean'} ({row['dprof_imbalance']:.1f})",
            f"{'conflict' if row['mst'] else 'clean'} ({row['mst_fraction']:.2f})",
        )
    emit(result_dir, "baseline_shootout.txt", table.render())

    static, moving, balanced = (
        by_pattern["static-conflict"],
        by_pattern["moving-conflict"],
        by_pattern["balanced"],
    )
    # Everyone gets the easy cases right.
    assert static["truth"] and static["ccprof"] and static["dprof"] and static["mst"]
    assert not balanced["ccprof"] and not balanced["dprof"] and not balanced["mst"]
    # The moving conflict is real (pure conflict misses by three-C)...
    assert moving["truth"]
    # ...CCProf catches it; DProf's whole-run spatial histogram balances out
    # (the paper's §7.1 critique) and MST's single-entry register is
    # overwritten before re-reference ("a subset of conflict misses").
    assert moving["ccprof"]
    assert not moving["dprof"]
    assert not moving["mst"]
