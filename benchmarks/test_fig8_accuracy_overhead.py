"""Figure 8 — classification F1-score and runtime overhead vs sampling period.

Paper §5.2/§5.3: 16 training loops (8 conflicting / 8 clean) are labelled
by full cache simulation; CCProf's sampling is synthesized at several mean
periods; a simple logistic regression on the contribution factor is scored
by 8-fold cross-validated F1.  Published points: F1 = 1 at mean period 171
(9.3x overhead), F1 = 0.83 at period 1212 (2.9x overhead); the paper
recommends 1212.

We regenerate both curves: measured F1 from our synthesized sampling, and
the overhead curve from the model calibrated on the paper's two points.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.contribution import contribution_factor
from repro.core.rcd import RcdAnalysis
from repro.pmu.overhead import OverheadModel
from repro.pmu.periods import UniformJitterPeriod
from repro.pmu.sampler import AddressSampler
from repro.reporting.tables import Table
from repro.stats.validation import cross_validate_f1
from repro.workloads.training import training_loops

from benchmarks.conftest import emit

#: Mean sampling periods swept (the paper's two published points included).
PERIODS = [40, 171, 480, 1212, 2800]

#: Iterations per training loop; sized so the coarsest period still sees a
#: handful of samples on the conflict loops.
REPEATS = 150


def _exact_cf(workload, geometry):
    """Ground truth: contribution factor from every L1 miss (simulator)."""
    cache = SetAssociativeCache(geometry)
    sets = []
    for access in workload.trace():
        if cache.access(access.address, access.ip).miss:
            sets.append(geometry.set_index(access.address))
    return contribution_factor(RcdAnalysis.from_set_sequence(sets, geometry.num_sets))


def _sampled_cf(workload, geometry, period, seed):
    sampler = AddressSampler(
        geometry, period=UniformJitterPeriod(period), seed=seed
    )
    result = sampler.run(workload.trace())
    analysis = RcdAnalysis.from_addresses(
        (sample.address for sample in result.samples), geometry
    )
    return contribution_factor(analysis)


def _run():
    geometry = CacheGeometry()
    loops = training_loops(geometry, repeats=REPEATS)
    labels = [int(loop.has_conflict) for loop in loops]

    exact_features = [_exact_cf(loop.factory(), geometry) for loop in loops]
    ground_truth_f1 = cross_validate_f1(exact_features, labels, folds=8, seed=0)

    model = OverheadModel.calibrated()
    curve = []
    for period in PERIODS:
        features = [
            _sampled_cf(loop.factory(), geometry, period, seed=index)
            for index, loop in enumerate(loops)
        ]
        f1 = cross_validate_f1(features, labels, folds=8, seed=0)
        curve.append((period, f1, model.overhead_at_period(period)))
    return ground_truth_f1, curve


def test_fig8_f1_and_overhead_vs_period(benchmark, result_dir):
    ground_truth_f1, curve = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Figure 8 - F1-score and modelled overhead vs mean sampling period",
        headers=["mean period", "F1 (sampled cf)", "overhead (calibrated model)"],
    )
    for period, f1, overhead in curve:
        table.add_row(period, f"{f1:.3f}", f"{overhead:.2f}x")
    notes = (
        f"ground-truth (exact RCD) F1: {ground_truth_f1:.3f}\n"
        "paper: F1=1 at period 171 (9.3x overhead); F1=0.83 at 1212 (2.9x)"
    )
    emit(result_dir, "fig8_accuracy_overhead.txt", table.render() + "\n" + notes)

    f1_by_period = {period: f1 for period, f1, _ in curve}
    overhead_by_period = {period: o for period, _, o in curve}

    # Shape: exact RCDs classify perfectly; fine sampling nearly so.
    assert ground_truth_f1 == 1.0
    assert f1_by_period[171] >= 0.9
    # Accuracy degrades (weakly) as the period coarsens past the paper's
    # recommended operating point.
    assert f1_by_period[2800] <= f1_by_period[171]
    assert f1_by_period[1212] >= 0.6  # paper: 0.83
    # The calibrated overhead curve is monotone decreasing and hits the
    # paper's two published points.
    overheads = [overhead_by_period[p] for p in PERIODS]
    assert overheads == sorted(overheads, reverse=True)
    assert abs(overhead_by_period[171] - 9.3) < 1e-6
    assert abs(overhead_by_period[1212] - 2.9) < 1e-6
