"""Ablation — prefetching vs conflict misses.

Real CPUs hide streaming misses behind hardware prefetchers, which is one
reason the paper distrusts naive simulation.  This bench quantifies the
interaction: per kernel, demand misses and total fill traffic under no
prefetcher / next-line / stride prefetching, against the software pad.

The structural result: prefetching slashes demand misses on streaming
patterns but cannot reduce the *fill traffic* of a conflict fold (every
prefetched line lands in the same overloaded set), while padding removes
that traffic outright — so conflict misses remain visible to PMU counters
on prefetching hardware, which is what makes CCProf workable there.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.cache.set_assoc import SetAssociativeCache
from repro.reporting.tables import Table
from repro.workloads.adi import AdiWorkload
from repro.workloads.rodinia import make_rodinia_workload
from repro.workloads.tinydnn import TinyDnnFcWorkload

from benchmarks.conftest import emit

SUBJECTS = [
    ("pathfinder (stream)", lambda: make_rodinia_workload("pathfinder"), None),
    ("adi (conflict)", lambda: AdiWorkload.original(n=128),
     lambda: AdiWorkload.padded(n=128)),
    ("tiny-dnn (conflict)", lambda: TinyDnnFcWorkload.original(in_size=256, out_size=128),
     lambda: TinyDnnFcWorkload.padded(in_size=256, out_size=128)),
]


def _run_one(factory, geometry):
    plain = SetAssociativeCache(geometry)
    plain_stats = plain.run_trace(factory().trace())
    nextline = NextLinePrefetcher(geometry, degree=2)
    nextline_stats = nextline.run_trace(factory().trace())
    stride = StridePrefetcher(geometry, degree=2)
    stride_stats = stride.run_trace(factory().trace())
    return {
        "plain_misses": plain_stats.misses,
        "accesses": plain_stats.accesses,
        "nextline_demand": nextline_stats.demand_misses,
        "nextline_fills": nextline_stats.demand_misses + nextline_stats.prefetches_issued,
        "stride_demand": stride_stats.demand_misses,
        "stride_fills": stride_stats.demand_misses + stride_stats.prefetches_issued,
    }


def _run():
    geometry = CacheGeometry()
    rows = []
    for name, factory, padded_factory in SUBJECTS:
        data = _run_one(factory, geometry)
        if padded_factory is not None:
            padded = SetAssociativeCache(geometry)
            data["padded_misses"] = padded.run_trace(padded_factory().trace()).misses
        else:
            data["padded_misses"] = None
        rows.append((name, data))
    return rows


def test_ablation_prefetch_vs_conflicts(benchmark, result_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        title="Ablation - demand misses / fill traffic under prefetching",
        headers=[
            "kernel", "plain misses", "next-line demand", "next-line fills",
            "stride demand", "stride fills", "padded misses",
        ],
    )
    data_by_name = {}
    for name, data in rows:
        data_by_name[name] = data
        table.add_row(
            name,
            data["plain_misses"],
            data["nextline_demand"],
            data["nextline_fills"],
            data["stride_demand"],
            data["stride_fills"],
            data["padded_misses"] if data["padded_misses"] is not None else "-",
        )
    emit(
        result_dir,
        "ablation_prefetch.txt",
        table.render()
        + "\nfills = demand misses + prefetches: the cache's true fill "
        "traffic, which only layout fixes can reduce",
    )

    stream = data_by_name["pathfinder (stream)"]
    # Prefetching hides most streaming demand misses.
    assert stream["nextline_demand"] < 0.6 * stream["plain_misses"]
    for name in ("adi (conflict)", "tiny-dnn (conflict)"):
        data = data_by_name[name]
        # Prefetching never reduces the conflict kernel's fill traffic...
        assert data["nextline_fills"] >= 0.95 * data["plain_misses"]
        assert data["stride_fills"] >= 0.95 * data["plain_misses"]
        # ...while padding removes most of it outright.
        assert data["padded_misses"] < 0.7 * data["plain_misses"]
