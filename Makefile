PYTHON ?= python
export PYTHONPATH := src

.PHONY: test chaos bench compile

test:
	$(PYTHON) -m pytest -x -q

chaos:
	$(PYTHON) -m pytest -q -m chaos

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

compile:
	$(PYTHON) -m compileall -q src
