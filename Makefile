PYTHON ?= python
export PYTHONPATH := src

.PHONY: test chaos service-smoke screen-validate bench perf watch compile lint

test:
	$(PYTHON) -m pytest -x -q

chaos:
	$(PYTHON) -m pytest -q -m chaos

# Quick service liveness gate: 50 concurrent jobs against an in-process
# daemon with one injected worker kill; exits nonzero on any invariant
# violation (lost job, duplicate resolution, tenant leak, p99 bound).
service-smoke:
	$(PYTHON) -m repro.service.chaos --jobs 50 --kill-rate 0.2 --kill-max 1 --slow-clients 2

# Analytical-screen cross-validation against the dynamic profiler on the
# padding suite; exits nonzero when precision/recall fall below the
# gates.  Writes the per-loop report to screen_validation.json.
screen-validate:
	$(PYTHON) -m repro.analysis.screenval --json screen_validation.json

# Pass --benchmark-only only when pytest-benchmark is installed; without
# it the suite still runs (timing comes from the no-op fallback fixture
# in benchmarks/conftest.py).
bench:
	$(PYTHON) -m pytest benchmarks/ $(shell $(PYTHON) -c "import importlib.util, sys; sys.stdout.write('--benchmark-only' if importlib.util.find_spec('pytest_benchmark') else '')")

# Scalar-vs-batched engine benchmark; writes BENCH_<revision>.json into
# the repository root (the perf trajectory artifact).
perf:
	$(PYTHON) -m repro.perf

# Regression gate over the committed perf trajectory: diffs every
# BENCH_*/MANIFEST_* pair in git order and exits 13 if any revision
# regressed past the watch thresholds.  Writes watch_report.json.
watch:
	$(PYTHON) -m repro.cli watch . --report watch_report.json

compile:
	$(PYTHON) -m compileall -q src

# ruff + mypy when available (CI installs both); skips with a notice
# otherwise so the target works in minimal environments.  mypy runs over
# the whole tree: pyproject.toml holds repro.analysis, repro.engine and
# repro.service.protocol to the strict bar and exempts the rest.
lint:
	@if $(PYTHON) -c "import importlib.util,sys; sys.exit(importlib.util.find_spec('ruff') is None)"; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "lint: ruff not installed, skipping"; \
	fi
	@if $(PYTHON) -c "import importlib.util,sys; sys.exit(importlib.util.find_spec('mypy') is None)"; then \
		$(PYTHON) -m mypy src/repro; \
	else \
		echo "lint: mypy not installed, skipping"; \
	fi
