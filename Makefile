PYTHON ?= python
export PYTHONPATH := src

.PHONY: test chaos bench perf compile

test:
	$(PYTHON) -m pytest -x -q

chaos:
	$(PYTHON) -m pytest -q -m chaos

# Pass --benchmark-only only when pytest-benchmark is installed; without
# it the suite still runs (timing comes from the no-op fallback fixture
# in benchmarks/conftest.py).
bench:
	$(PYTHON) -m pytest benchmarks/ $(shell $(PYTHON) -c "import importlib.util, sys; sys.stdout.write('--benchmark-only' if importlib.util.find_spec('pytest_benchmark') else '')")

# Scalar-vs-batched engine benchmark; writes BENCH_<revision>.json into
# the repository root (the perf trajectory artifact).
perf:
	$(PYTHON) -m repro.perf

compile:
	$(PYTHON) -m compileall -q src
